package embed

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// roundTrip pushes a Snapshot through gob, the same codec the index snapshot
// frame uses.
func roundTrip(t *testing.T, s Snapshot) Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Snapshot
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func sameEmbedding(t *testing.T, a, b Embedder, inputDim int) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, inputDim)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		ea, eb := a.Embed(x), b.Embed(x)
		if len(ea) != len(eb) {
			t.Fatalf("dims %d vs %d", len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("trial %d dim %d: %v vs %v — restored embedder not bitwise identical", trial, i, ea[i], eb[i])
			}
		}
	}
}

func TestSnapshotRoundTripPretrained(t *testing.T) {
	orig := NewPretrained(52, 16, 3)
	s, err := NewSnapshot(orig)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := roundTrip(t, s).Embedder()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "pretrained" || restored.Dim() != 16 {
		t.Fatalf("restored %q dim %d", restored.Name(), restored.Dim())
	}
	sameEmbedding(t, orig, restored, 52)
}

func TestSnapshotRoundTripTrained(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(5)), 20, 12, 8)
	orig := NewTrained(net)
	s, err := NewSnapshot(orig)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := roundTrip(t, s).Embedder()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "triplet-trained" || restored.Dim() != 8 {
		t.Fatalf("restored %q dim %d", restored.Name(), restored.Dim())
	}
	sameEmbedding(t, orig, restored, 20)
}

func TestSnapshotRejectsDamage(t *testing.T) {
	cases := []Snapshot{
		{Kind: "unknown"},
		{Kind: "pretrained", Rows: 0, Dim: 4},
		{Kind: "pretrained", Rows: 4, Dim: 4, Data: make([]float64, 3)}, // wrong backing length
		{Kind: "triplet-trained"},                                      // no network
		{Kind: "triplet-trained", Net: &nn.MLP{Sizes: []int{5}}},
		{Kind: "triplet-trained", Net: &nn.MLP{Sizes: []int{5, 3}, W: [][][]float64{{{1}}}, B: [][]float64{{0, 0, 0}}}},
	}
	for i, s := range cases {
		if _, err := s.Embedder(); err == nil {
			t.Errorf("case %d: damaged snapshot %+v accepted", i, s)
		}
	}
}
