package embed

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
)

func TestPretrainedDeterministic(t *testing.T) {
	a := NewPretrained(10, 4, 7)
	b := NewPretrained(10, 4, 7)
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	ea, eb := a.Embed(x), b.Embed(x)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed gave different embeddings")
		}
	}
	c := NewPretrained(10, 4, 8)
	ec := c.Embed(x)
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical embeddings")
	}
}

func TestPretrainedBounded(t *testing.T) {
	p := NewPretrained(6, 8, 1)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		for _, v := range p.Embed(x) {
			if v < -1 || v > 1 {
				t.Fatalf("tanh output out of range: %v", v)
			}
		}
	}
	if p.Dim() != 8 || p.Name() != "pretrained" {
		t.Error("metadata wrong")
	}
}

func TestPretrainedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad dims")
		}
	}()
	NewPretrained(0, 4, 1)
}

func TestPretrainedEmbedPanicsOnWrongDim(t *testing.T) {
	p := NewPretrained(4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong feature dim")
		}
	}()
	p.Embed([]float64{1, 2})
}

func TestTrained(t *testing.T) {
	net := nn.NewMLP(rand.New(rand.NewSource(3)), 5, 6, 3)
	e := NewTrained(net)
	if e.Dim() != 3 || e.Name() != "triplet-trained" {
		t.Error("metadata wrong")
	}
	out := e.Embed(make([]float64, 5))
	want := net.Forward(make([]float64, 5))
	for i := range out {
		if out[i] != want[i] {
			t.Error("Embed differs from Forward")
		}
	}
}

func TestAllMatchesSequential(t *testing.T) {
	ds, err := dataset.Generate("night-street", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPretrained(ds.FeatureDim(), 16, 4)
	parallel := All(p, ds)
	if parallel.Rows() != ds.Len() {
		t.Fatalf("got %d embeddings", parallel.Rows())
	}
	for i := 0; i < ds.Len(); i += 37 {
		want := p.Embed(ds.Records[i].Features)
		for j := range want {
			if parallel.Row(i)[j] != want[j] {
				t.Fatalf("record %d dim %d: parallel differs from sequential", i, j)
			}
		}
	}
}
