// Package ann provides approximate nearest-neighbor search for the index's
// distance computations. The paper computes exact distances from every
// record to every cluster representative — O(N·N2·D) — which dominates index
// construction at corpus scale; an inverted-file (IVF) index over the
// representatives makes that step sub-linear in N2 at a small recall cost.
//
// The index stores its vectors, coarse centroids, and per-cell member blocks
// as contiguous vecmath.Matrix rows, so both the Lloyd assignment sweep and
// query-time cell probing stream the blocked one-to-many kernels instead of
// chasing per-vector pointers. Probing uses the exact SquaredL2 kernel
// shared with the rest of the pipeline; only the Lloyd assignment uses the
// |a|²+|b|²−2a·b decomposition, where the distance is a transient comparison
// key that is never persisted (see docs/ARCHITECTURE.md, "Memory layout &
// kernels"). A reusable Searcher makes steady-state probing allocation-free.
package ann

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
	"repro/internal/xrand"
)

// Config parameterizes IVF construction.
type Config struct {
	// Cells is the number of coarse k-means cells (default ~sqrt(#vectors)).
	Cells int
	// Iterations is the number of Lloyd iterations (default 10).
	Iterations int
	// Parallelism bounds the worker count for construction and table
	// probing (<= 0 uses all CPUs); results are identical at every value.
	Parallelism int
	// Seed makes construction deterministic.
	Seed int64
	// Quantize trains a uint8 code plane over the vectors and uses it to
	// prune both the Lloyd assignment sweep and query-time probing, reranking
	// survivors through the exact kernels. Results are bitwise identical with
	// the plane on or off; only the amount of exact distance work changes.
	Quantize bool
	// Telemetry, when non-nil, receives probe accounting from every Search:
	// searches run, cells probed, and candidate vectors scanned. Disabled
	// telemetry costs one branch per Search.
	Telemetry *telemetry.Registry
}

// DefaultConfig sizes the cell count to the square root of the vector count.
func DefaultConfig(numVectors int, seed int64) Config {
	cells := int(math.Sqrt(float64(numVectors)))
	if cells < 1 {
		cells = 1
	}
	return Config{Cells: cells, Iterations: 10, Seed: seed}
}

// IVF is an inverted-file index over a fixed vector set: vectors are
// assigned to their nearest coarse centroid, and a query scans only the
// nprobe nearest cells.
type IVF struct {
	vectors   vecmath.Matrix
	centroids vecmath.Matrix
	lists     [][]int
	// cellVecs[c] holds the vectors of cell c gathered into one contiguous
	// block, row-aligned with lists[c], so probing a cell is one batch-kernel
	// sweep over sequential memory.
	cellVecs []vecmath.Matrix

	// Quantized probing planes (zero values when Config.Quantize is off):
	// code rows for the centroids and for each cell's member block, sharing
	// one parameter set trained over the vectors. Searcher streams these
	// first and reranks survivors exactly — see quant.go.
	centQ vecmath.QuantMatrix
	cellQ []vecmath.QuantMatrix

	// Probe accounting (nil-safe counters; see Config.Telemetry). Search is
	// called from parallel hot loops, so these are atomic.
	searches *telemetry.Counter
	probed   *telemetry.Counter
	scanned  *telemetry.Counter
	qcands   *telemetry.Counter
	qrerank  *telemetry.Counter
}

// Build constructs the index with k-means coarse quantization (FPF
// initialization followed by Lloyd iterations).
func Build(cfg Config, vectors vecmath.Matrix) (*IVF, error) {
	if vectors.Rows() == 0 {
		return nil, fmt.Errorf("ann: no vectors")
	}
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("ann: cells must be positive, got %d", cfg.Cells)
	}
	n := vectors.Rows()
	cells := cfg.Cells
	if cells > n {
		cells = n
	}

	// FPF seeds the centroids with well-spread vectors, then Lloyd refines.
	r := xrand.New(cfg.Seed)
	seeds := cluster.FPFPar(vectors, cells, r.Intn(n), cfg.Parallelism)
	centroids := vecmath.GatherRows(vectors, seeds)

	// With Quantize on, the vectors' code plane is trained once up front
	// (vectors never move); the centroids are re-coded each iteration since
	// Lloyd moves them. See quant.go for why the pruned assignment is
	// bitwise identical to the exact sweep.
	var params vecmath.QuantParams
	var vq vecmath.QuantMatrix
	var vnorms []float64
	var buildStats cluster.QuantScanStats
	if cfg.Quantize {
		params = vecmath.TrainQuantParams(vectors)
		var err error
		if vq, err = vecmath.QuantizeMatrix(vectors, params); err != nil {
			return nil, fmt.Errorf("ann: quantizing vectors: %w", err)
		}
		vnorms = vecmath.NormsSquared(vectors, make([]float64, n))
	}

	assign := make([]int, n)
	centNorms := make([]float64, centroids.Rows())
	type sweepResult struct {
		changed bool
		stats   cluster.QuantScanStats
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		// The assignment sweep is the O(N·cells·D) hot loop; per-vector
		// assignments are independent, so it shards cleanly. The nearest
		// centroid is picked via the |c|²−2v·c decomposition (the |v|² term
		// is constant per vector, so it cannot change the argmin): the
		// distance here is a transient comparison key, never persisted, which
		// is exactly where the kernel contract admits the decomposed form.
		vecmath.NormsSquared(centroids, centNorms)
		var iterCentQ vecmath.QuantMatrix
		maxCentNorm := 0.0
		if cfg.Quantize {
			var err error
			if iterCentQ, err = vecmath.QuantizeMatrix(centroids, params); err != nil {
				return nil, fmt.Errorf("ann: quantizing centroids: %w", err)
			}
			for _, cn := range centNorms {
				if cn > maxCentNorm {
					maxCentNorm = cn
				}
			}
		}
		res := parallel.Reduce(cfg.Parallelism, n, sweepResult{},
			func(_ int, s parallel.Span) sweepResult {
				dots := make([]float64, centroids.Rows()) // per-chunk scratch
				var cds []int64
				if cfg.Quantize {
					cds = make([]int64, centroids.Rows())
				}
				var chunk sweepResult
				for i := s.Lo; i < s.Hi; i++ {
					var best int
					if cfg.Quantize {
						best = assignNearestQuant(vectors.Row(i), vq.Row(i), vnorms[i],
							vq.MaxErr(), maxCentNorm, centroids, centNorms, iterCentQ,
							cds, &chunk.stats)
					} else {
						vecmath.DotBatch(vectors.Row(i), centroids, dots)
						bestD := math.Inf(1)
						for c, dot := range dots {
							if d := centNorms[c] - 2*dot; d < bestD {
								best, bestD = c, d
							}
						}
					}
					if assign[i] != best {
						assign[i] = best
						chunk.changed = true
					}
				}
				return chunk
			},
			func(a, b sweepResult) sweepResult {
				a.changed = a.changed || b.changed
				a.stats.Add(b.stats)
				return a
			})
		buildStats.Add(res.stats)
		if !res.changed && iter > 0 {
			break
		}
		// Recompute centroids; empty cells keep their previous position.
		// This accumulation stays serial: it is O(N·D) against the sweep's
		// O(N·cells·D), and a record-order float sum keeps the centroids
		// identical at every worker count.
		sums := vecmath.NewMatrix(centroids.Rows(), vectors.Dim())
		counts := make([]int, centroids.Rows())
		for i := 0; i < n; i++ {
			vecmath.AXPY(sums.Row(assign[i]), 1, vectors.Row(i))
			counts[assign[i]]++
		}
		for c := 0; c < centroids.Rows(); c++ {
			if counts[c] == 0 {
				continue
			}
			dst, src := centroids.Row(c), sums.Row(c)
			for j := range src {
				dst[j] = src[j] / float64(counts[c])
			}
		}
	}

	lists := make([][]int, centroids.Rows())
	for i := 0; i < n; i++ {
		lists[assign[i]] = append(lists[assign[i]], i)
	}
	cellVecs := make([]vecmath.Matrix, len(lists))
	for c, ids := range lists {
		cellVecs[c] = vecmath.GatherRows(vectors, ids)
	}
	ix := &IVF{
		vectors:   vectors,
		centroids: centroids,
		lists:     lists,
		cellVecs:  cellVecs,
		searches:  cfg.Telemetry.Counter("tasti_ann_searches_total"),
		probed:    cfg.Telemetry.Counter("tasti_ann_probed_cells_total"),
		scanned:   cfg.Telemetry.Counter("tasti_ann_scanned_candidates_total"),
		qcands:    cfg.Telemetry.Counter("tasti_quant_candidates_total"),
		qrerank:   cfg.Telemetry.Counter("tasti_quant_rerank_total"),
	}
	if cfg.Quantize {
		var err error
		if ix.centQ, ix.cellQ, err = quantizeCells(centroids, cellVecs, params); err != nil {
			return nil, fmt.Errorf("ann: quantizing cells: %w", err)
		}
		ix.qcands.Add(buildStats.Candidates)
		ix.qrerank.Add(buildStats.Reranked)
	}
	return ix, nil
}

// NumCells returns the number of coarse cells.
func (ix *IVF) NumCells() int { return ix.centroids.Rows() }

// Searcher is reusable scratch for IVF probes: centroid and candidate
// distance buffers plus the bounded TopK selectors. A warm Searcher performs
// zero allocations per Search. A Searcher is not safe for concurrent use;
// parallel callers hold one per chunk.
type Searcher struct {
	centDists []float64
	candDists []float64
	codeDists []int64
	qrow      []uint8
	cellTK    *vecmath.TopK
	candTK    *vecmath.TopK
	cells     []vecmath.IndexedValue
	out       []vecmath.IndexedValue
}

// Search returns the approximate k nearest vectors to q in ix, scanning the
// nprobe nearest cells. Results are ascending by Euclidean distance (ties by
// vector ID); Value holds the distance and Index the vector's position in
// the build set. The returned slice is the Searcher's internal buffer, valid
// until the next call.
func (s *Searcher) Search(ix *IVF, q []float64, k, nprobe int) []vecmath.IndexedValue {
	if k <= 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	ncent := ix.centroids.Rows()
	if nprobe > ncent {
		nprobe = ncent
	}
	quant := ix.centQ.Enabled()
	var qErr float64
	var qrow []uint8
	var qstats cluster.QuantScanStats
	if quant {
		if cap(s.qrow) < len(q) {
			s.qrow = make([]uint8, len(q))
		}
		qrow = s.qrow[:len(q)]
		qErr = vecmath.QuantizeRowInto(qrow, q, ix.centQ.Params())
	}
	if s.cellTK == nil {
		s.cellTK = vecmath.NewTopK(nprobe)
	} else {
		s.cellTK.Reset(nprobe)
	}
	if quant {
		// Stream the centroid code plane, rerank survivors exactly: a bound
		// strictly above the TopK threshold is guaranteed rejection, so the
		// probed cell set is identical to the exact sweep's.
		if cap(s.codeDists) < ncent {
			s.codeDists = make([]int64, ncent)
		}
		ccd := s.codeDists[:ncent]
		vecmath.CodeDistBatch(qrow, ix.centQ, ccd)
		qstats.Candidates += int64(ncent)
		for c, cd := range ccd {
			lb := ix.centQ.LowerBound(cd, qErr)
			if lb*lb > s.cellTK.Threshold() {
				continue
			}
			qstats.Reranked++
			s.cellTK.Offer(c, vecmath.SquaredL2(q, ix.centroids.Row(c)))
		}
	} else {
		if cap(s.centDists) < ncent {
			s.centDists = make([]float64, ncent)
		}
		centDists := s.centDists[:ncent]
		vecmath.SquaredL2Batch(q, ix.centroids, centDists)
		for c, d := range centDists {
			s.cellTK.Offer(c, d)
		}
	}
	s.cells = s.cellTK.Sorted(s.cells[:0])

	if s.candTK == nil {
		s.candTK = vecmath.NewTopK(k)
	} else {
		s.candTK.Reset(k)
	}
	scanned := 0
	for _, cell := range s.cells {
		ids := ix.lists[cell.Index]
		if len(ids) == 0 {
			continue
		}
		if quant {
			cq := ix.cellQ[cell.Index]
			if cap(s.codeDists) < len(ids) {
				s.codeDists = make([]int64, len(ids))
			}
			ccd := s.codeDists[:len(ids)]
			vecmath.CodeDistBatch(qrow, cq, ccd)
			qstats.Candidates += int64(len(ids))
			vecs := ix.cellVecs[cell.Index]
			for j, cd := range ccd {
				lb := cq.LowerBound(cd, qErr)
				if lb*lb > s.candTK.Threshold() {
					continue
				}
				qstats.Reranked++
				s.candTK.Offer(ids[j], vecmath.SquaredL2(q, vecs.Row(j)))
			}
		} else {
			if cap(s.candDists) < len(ids) {
				s.candDists = make([]float64, len(ids))
			}
			cd := s.candDists[:len(ids)]
			vecmath.SquaredL2Batch(q, ix.cellVecs[cell.Index], cd)
			for j, d := range cd {
				s.candTK.Offer(ids[j], d)
			}
		}
		scanned += len(ids)
	}
	ix.searches.Inc()
	ix.probed.Add(int64(len(s.cells)))
	ix.scanned.Add(int64(scanned))
	if quant {
		ix.qcands.Add(qstats.Candidates)
		ix.qrerank.Add(qstats.Reranked)
	}
	s.out = s.candTK.Sorted(s.out[:0])
	for i := range s.out {
		s.out[i].Value = math.Sqrt(s.out[i].Value)
	}
	return s.out
}

// Search is the convenience form of Searcher.Search: it allocates fresh
// scratch per call and returns a slice the caller owns. Hot loops hold a
// Searcher instead.
func (ix *IVF) Search(q []float64, k, nprobe int) []vecmath.IndexedValue {
	var s Searcher
	return s.Search(ix, q, k, nprobe)
}

// BuildTableApprox builds a cluster.Table like cluster.BuildTable, but uses
// an IVF over the representative embeddings so each record probes only
// nprobe cells instead of scanning every representative. Neighbor lists may
// miss true nearest representatives with small probability; nprobe trades
// recall for speed.
func BuildTableApprox(embeddings vecmath.Matrix, reps []int, k, nprobe int, cfg Config) (*cluster.Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ann: table needs k > 0, got %d", k)
	}
	for _, rep := range reps {
		if rep < 0 || rep >= embeddings.Rows() {
			return nil, fmt.Errorf("ann: representative %d out of range", rep)
		}
	}
	repVecs := vecmath.GatherRows(embeddings, reps)
	ivf, err := Build(cfg, repVecs)
	if err != nil {
		return nil, err
	}
	t := &cluster.Table{
		K:         k,
		Reps:      append([]int(nil), reps...),
		Neighbors: make([][]cluster.Neighbor, embeddings.Rows()),
	}
	// Per-record probes are independent reads of the immutable IVF; one
	// Searcher per chunk keeps the sweep allocation-light.
	parallel.ForChunks(cfg.Parallelism, embeddings.Rows(), func(_ int, sp parallel.Span) {
		var s Searcher
		for i := sp.Lo; i < sp.Hi; i++ {
			found := s.Search(ivf, embeddings.Row(i), k, nprobe)
			nbrs := make([]cluster.Neighbor, len(found))
			for j, f := range found {
				nbrs[j] = cluster.Neighbor{Rep: reps[f.Index], Dist: f.Value}
			}
			t.Neighbors[i] = nbrs
		}
	})
	return t, nil
}
