// Package ann provides approximate nearest-neighbor search for the index's
// distance computations. The paper computes exact distances from every
// record to every cluster representative — O(N·N2·D) — which dominates index
// construction at corpus scale; an inverted-file (IVF) index over the
// representatives makes that step sub-linear in N2 at a small recall cost.
package ann

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
	"repro/internal/xrand"
)

// Config parameterizes IVF construction.
type Config struct {
	// Cells is the number of coarse k-means cells (default ~sqrt(#vectors)).
	Cells int
	// Iterations is the number of Lloyd iterations (default 10).
	Iterations int
	// Parallelism bounds the worker count for construction and table
	// probing (<= 0 uses all CPUs); results are identical at every value.
	Parallelism int
	// Seed makes construction deterministic.
	Seed int64
	// Telemetry, when non-nil, receives probe accounting from every Search:
	// searches run, cells probed, and candidate vectors scanned. Disabled
	// telemetry costs one branch per Search.
	Telemetry *telemetry.Registry
}

// DefaultConfig sizes the cell count to the square root of the vector count.
func DefaultConfig(numVectors int, seed int64) Config {
	cells := int(math.Sqrt(float64(numVectors)))
	if cells < 1 {
		cells = 1
	}
	return Config{Cells: cells, Iterations: 10, Seed: seed}
}

// IVF is an inverted-file index over a fixed vector set: vectors are
// assigned to their nearest coarse centroid, and a query scans only the
// nprobe nearest cells.
type IVF struct {
	vectors   [][]float64
	centroids [][]float64
	lists     [][]int

	// Probe accounting (nil-safe counters; see Config.Telemetry). Search is
	// called from parallel hot loops, so these are atomic.
	searches *telemetry.Counter
	probed   *telemetry.Counter
	scanned  *telemetry.Counter
}

// Build constructs the index with k-means coarse quantization (FPF
// initialization followed by Lloyd iterations).
func Build(cfg Config, vectors [][]float64) (*IVF, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("ann: no vectors")
	}
	if cfg.Cells <= 0 {
		return nil, fmt.Errorf("ann: cells must be positive, got %d", cfg.Cells)
	}
	cells := cfg.Cells
	if cells > len(vectors) {
		cells = len(vectors)
	}

	// FPF seeds the centroids with well-spread vectors, then Lloyd refines.
	r := xrand.New(cfg.Seed)
	seeds := cluster.FPFPar(vectors, cells, r.Intn(len(vectors)), cfg.Parallelism)
	centroids := make([][]float64, len(seeds))
	for i, s := range seeds {
		centroids[i] = vecmath.Clone(vectors[s])
	}

	assign := make([]int, len(vectors))
	for iter := 0; iter < cfg.Iterations; iter++ {
		// The assignment sweep is the O(N·cells·D) hot loop; per-vector
		// assignments are independent, so it shards cleanly.
		changed := parallel.Reduce(cfg.Parallelism, len(vectors), false,
			func(_ int, s parallel.Span) bool {
				chunkChanged := false
				for i := s.Lo; i < s.Hi; i++ {
					best, bestD := 0, math.Inf(1)
					for c, cent := range centroids {
						if d := vecmath.SquaredL2(vectors[i], cent); d < bestD {
							best, bestD = c, d
						}
					}
					if assign[i] != best {
						assign[i] = best
						chunkChanged = true
					}
				}
				return chunkChanged
			},
			func(a, b bool) bool { return a || b })
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty cells keep their previous position.
		// This accumulation stays serial: it is O(N·D) against the sweep's
		// O(N·cells·D), and a record-order float sum keeps the centroids
		// bit-identical to the pre-parallel implementation.
		sums := make([][]float64, len(centroids))
		counts := make([]int, len(centroids))
		for i := range sums {
			sums[i] = make([]float64, len(vectors[0]))
		}
		for i, v := range vectors {
			vecmath.AXPY(sums[assign[i]], 1, v)
			counts[assign[i]]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}

	lists := make([][]int, len(centroids))
	for i := range vectors {
		lists[assign[i]] = append(lists[assign[i]], i)
	}
	return &IVF{
		vectors:   vectors,
		centroids: centroids,
		lists:     lists,
		searches:  cfg.Telemetry.Counter("tasti_ann_searches_total"),
		probed:    cfg.Telemetry.Counter("tasti_ann_probed_cells_total"),
		scanned:   cfg.Telemetry.Counter("tasti_ann_scanned_candidates_total"),
	}, nil
}

// NumCells returns the number of coarse cells.
func (ix *IVF) NumCells() int { return len(ix.centroids) }

// Search returns the approximate k nearest vectors to q, scanning the
// nprobe nearest cells. Results are ascending by Euclidean distance; Value
// holds the distance and Index the vector's position in the build set.
func (ix *IVF) Search(q []float64, k, nprobe int) []vecmath.IndexedValue {
	if k <= 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	centDists := make([]float64, len(ix.centroids))
	for c, cent := range ix.centroids {
		centDists[c] = vecmath.SquaredL2(q, cent)
	}
	cells := vecmath.SmallestK(centDists, nprobe)

	type cand struct {
		id   int
		dist float64
	}
	var cands []cand
	for _, cell := range cells {
		for _, id := range ix.lists[cell.Index] {
			cands = append(cands, cand{id, vecmath.SquaredL2(q, ix.vectors[id])})
		}
	}
	ix.searches.Inc()
	ix.probed.Add(int64(len(cells)))
	ix.scanned.Add(int64(len(cands)))
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].id < cands[b].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]vecmath.IndexedValue, k)
	for i := 0; i < k; i++ {
		out[i] = vecmath.IndexedValue{Index: cands[i].id, Value: math.Sqrt(cands[i].dist)}
	}
	return out
}

// BuildTableApprox builds a cluster.Table like cluster.BuildTable, but uses
// an IVF over the representative embeddings so each record probes only
// nprobe cells instead of scanning every representative. Neighbor lists may
// miss true nearest representatives with small probability; nprobe trades
// recall for speed.
func BuildTableApprox(embeddings [][]float64, reps []int, k, nprobe int, cfg Config) (*cluster.Table, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ann: table needs k > 0, got %d", k)
	}
	repVecs := make([][]float64, len(reps))
	for i, rep := range reps {
		if rep < 0 || rep >= len(embeddings) {
			return nil, fmt.Errorf("ann: representative %d out of range", rep)
		}
		repVecs[i] = embeddings[rep]
	}
	ivf, err := Build(cfg, repVecs)
	if err != nil {
		return nil, err
	}
	t := &cluster.Table{
		K:         k,
		Reps:      append([]int(nil), reps...),
		Neighbors: make([][]cluster.Neighbor, len(embeddings)),
	}
	// Per-record probes are independent reads of the immutable IVF.
	parallel.For(cfg.Parallelism, len(embeddings), func(i int) {
		found := ivf.Search(embeddings[i], k, nprobe)
		nbrs := make([]cluster.Neighbor, len(found))
		for j, f := range found {
			nbrs[j] = cluster.Neighbor{Rep: reps[f.Index], Dist: f.Value}
		}
		t.Neighbors[i] = nbrs
	})
	return t, nil
}
