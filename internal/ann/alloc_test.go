package ann

import (
	"testing"
)

// TestSearcherZeroAllocWarm pins the serve-path contract: a warm Searcher
// performs zero allocations per query. The returned slice is the Searcher's
// internal buffer, reused across calls.
func TestSearcherZeroAllocWarm(t *testing.T) {
	vecs := testVectors(1000, 16, 21)
	ix, err := Build(DefaultConfig(vecs.Rows(), 21), vecs)
	if err != nil {
		t.Fatal(err)
	}
	q := testVectors(1, 16, 22).Row(0)
	var s Searcher
	s.Search(ix, q, 10, 4) // warm-up: sizes all scratch buffers
	if n := testing.AllocsPerRun(100, func() {
		s.Search(ix, q, 10, 4)
	}); n != 0 {
		t.Errorf("warm Searcher allocates %v per query", n)
	}
}

// TestSearcherMatchesIVFSearch pins that the reusable Searcher and the
// convenience IVF.Search return identical results.
func TestSearcherMatchesIVFSearch(t *testing.T) {
	vecs := testVectors(500, 8, 23)
	ix, err := Build(DefaultConfig(vecs.Rows(), 23), vecs)
	if err != nil {
		t.Fatal(err)
	}
	var s Searcher
	for qi := int64(0); qi < 5; qi++ {
		q := testVectors(1, 8, 30+qi).Row(0)
		got := s.Search(ix, q, 7, 3)
		want := ix.Search(q, 7, 3)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %v vs %v", qi, i, got[i], want[i])
			}
		}
	}
}
