package ann

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vecmath"
)

// TestIVFQuantBitwise: with Quantize on, construction (cell structure) and
// probing must be bitwise identical to the exact IVF at every parallelism
// level — the plane only prunes work the exact path provably discards.
func TestIVFQuantBitwise(t *testing.T) {
	vecs := testVectors(600, 12, 4)
	base := DefaultConfig(600, 9)
	exact, err := Build(base, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		cfg := base
		cfg.Quantize = true
		cfg.Parallelism = p
		quant, err := Build(cfg, vecs)
		if err != nil {
			t.Fatal(err)
		}
		if quant.NumCells() != exact.NumCells() {
			t.Fatalf("p=%d: %d cells vs %d", p, quant.NumCells(), exact.NumCells())
		}
		for c := range exact.lists {
			if len(quant.lists[c]) != len(exact.lists[c]) {
				t.Fatalf("p=%d cell %d: %d members vs %d", p, c, len(quant.lists[c]), len(exact.lists[c]))
			}
			for j := range exact.lists[c] {
				if quant.lists[c][j] != exact.lists[c][j] {
					t.Fatalf("p=%d cell %d member %d: %d vs %d", p, c, j, quant.lists[c][j], exact.lists[c][j])
				}
			}
		}
		for c := 0; c < exact.centroids.Rows(); c++ {
			qr, er := quant.centroids.Row(c), exact.centroids.Row(c)
			for d := range er {
				if qr[d] != er[d] {
					t.Fatalf("p=%d centroid %d dim %d: %v vs %v (bitwise mismatch)", p, c, d, qr[d], er[d])
				}
			}
		}
		queries := testVectors(40, 12, 77)
		var qs, es Searcher
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			got := qs.Search(quant, q, 5, 3)
			want := es.Search(exact, q, 5, 3)
			if len(got) != len(want) {
				t.Fatalf("p=%d query %d: %d results vs %d", p, qi, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("p=%d query %d result %d: %+v vs %+v (bitwise mismatch)", p, qi, j, got[j], want[j])
				}
			}
		}
	}
}

// TestBuildTableApproxQuantBitwise: the approximate table is bitwise
// identical with the plane on or off.
func TestBuildTableApproxQuantBitwise(t *testing.T) {
	embs := testVectors(500, 10, 21)
	reps := make([]int, 60)
	for i := range reps {
		reps[i] = i * 8
	}
	base := DefaultConfig(len(reps), 3)
	want, err := BuildTableApprox(embs, reps, 3, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Quantize = true
	got, err := BuildTableApprox(embs, reps, 3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Neighbors {
		w, g := want.Neighbors[i], got.Neighbors[i]
		if len(w) != len(g) {
			t.Fatalf("record %d: %d vs %d neighbors", i, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("record %d neighbor %d: %+v vs %+v (bitwise mismatch)", i, j, g[j], w[j])
			}
		}
	}
}

// TestSearcherQuantZeroAlloc: a warm quantized Search stays allocation-free
// like the exact path.
func TestSearcherQuantZeroAlloc(t *testing.T) {
	vecs := testVectors(400, 8, 13)
	cfg := DefaultConfig(400, 5)
	cfg.Quantize = true
	ix, err := Build(cfg, vecs)
	if err != nil {
		t.Fatal(err)
	}
	var s Searcher
	q := vecs.Row(7)
	s.Search(ix, q, 4, 3) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() {
		s.Search(ix, q, 4, 3)
	})
	if allocs > 0 {
		t.Fatalf("warm quantized Search allocates %v times per call", allocs)
	}
}

// TestAssignNearestQuantMargin drives the pruned argmin against the exact
// decomposed argmin over adversarially tight clusters, where key rounding
// is most likely to bite.
func TestAssignNearestQuantMargin(t *testing.T) {
	vecs := testVectors(300, 6, 31)
	// Centroids very close together: many near-tie keys.
	cents := vecmath.NewMatrix(20, 6)
	for c := 0; c < 20; c++ {
		base := vecs.Row(c * 3)
		row := cents.Row(c)
		for d := range row {
			row[d] = base[d] * (1 + float64(c)*1e-7)
		}
	}
	params := vecmath.TrainQuantParams(vecs)
	vq, err := vecmath.QuantizeMatrix(vecs, params)
	if err != nil {
		t.Fatal(err)
	}
	centQ, err := vecmath.QuantizeMatrix(cents, params)
	if err != nil {
		t.Fatal(err)
	}
	centNorms := vecmath.NormsSquared(cents, make([]float64, 20))
	maxCN := 0.0
	for _, cn := range centNorms {
		if cn > maxCN {
			maxCN = cn
		}
	}
	vnorms := vecmath.NormsSquared(vecs, make([]float64, vecs.Rows()))
	dots := make([]float64, 20)
	cds := make([]int64, 20)
	var stats cluster.QuantScanStats
	for i := 0; i < vecs.Rows(); i++ {
		v := vecs.Row(i)
		vecmath.DotBatch(v, cents, dots)
		wantBest, bestD := 0, centNorms[0]-2*dots[0]
		for c := 1; c < 20; c++ {
			if d := centNorms[c] - 2*dots[c]; d < bestD {
				wantBest, bestD = c, d
			}
		}
		got := assignNearestQuant(v, vq.Row(i), vnorms[i], vq.MaxErr(), maxCN,
			cents, centNorms, centQ, cds, &stats)
		if got != wantBest {
			t.Fatalf("vector %d: pruned argmin %d, exact %d", i, got, wantBest)
		}
	}
	if stats.Candidates != int64(vecs.Rows())*20 {
		t.Fatalf("candidates %d, want %d", stats.Candidates, vecs.Rows()*20)
	}
}
