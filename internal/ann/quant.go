package ann

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/vecmath"
)

// Quantized pruning for the IVF. Two sites scan the code plane first:
//
//   - the Lloyd assignment sweep (assignNearestQuant below), where the
//     nearest centroid is picked over |c|²−2v·c comparison keys, and
//   - query-time probing (Searcher.Search), where both the cell TopK and
//     the candidate TopK admit by exact squared distance.
//
// Probing reuses the cluster-layer argument unchanged: TopK.Threshold
// rejects strictly greater offers, so a code-distance lower bound strictly
// above it proves the exact offer would lose. The assignment sweep needs one
// extra ingredient: its keys drop the per-vector |v|² term and are computed
// in floating point, so comparing a true-distance bound against a computed
// key must absorb the key's rounding. quantKeyMargin below scales a
// deterministic slack to the magnitudes involved — about 1e-9 relative,
// which is several orders above the ~dim·2⁻⁵² relative rounding of a
// norm/dot evaluation and several below the quantization slack doing the
// actual pruning — so a skipped centroid provably could not have won the
// argmin, and assignment stays bitwise identical to the unpruned sweep.
const quantKeyMargin = 1e-9

// assignNearestQuant returns the nearest-centroid index for vector v,
// identical to the exact decomposed argmin (strict improvement, first index
// wins). vcodes is v's code row, vnorm its exact squared norm, maxCentNorm
// the max entry of centNorms, and vErr the decode-error bound covering v's
// codes. cds is caller scratch with one entry per centroid.
func assignNearestQuant(v []float64, vcodes []uint8, vnorm, vErr, maxCentNorm float64,
	centroids vecmath.Matrix, centNorms []float64, centQ vecmath.QuantMatrix,
	cds []int64, stats *cluster.QuantScanStats) int {
	vecmath.CodeDistBatch(vcodes, centQ, cds)
	stats.Candidates += int64(len(cds))
	margin := quantKeyMargin * (vnorm + maxCentNorm + 1)
	best, bestD := 0, math.Inf(1)
	for c, cd := range cds {
		// d²(v,c) >= lb², so the centroid's key is at least
		// lb² − |v|² − (key rounding); at or past the current best key the
		// strict-improvement update cannot fire.
		if lb := centQ.LowerBound(cd, vErr); lb*lb-vnorm-margin >= bestD {
			continue
		}
		stats.Reranked++
		// Dot is bitwise identical to the DotBatch entry the unpruned sweep
		// reads, so the surviving keys are the same bits.
		if d := centNorms[c] - 2*vecmath.Dot(v, centroids.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// quantizeCells codes the centroids and every cell's member block under the
// shared params, building the probing planes Searcher streams.
func quantizeCells(centroids vecmath.Matrix, cellVecs []vecmath.Matrix, params vecmath.QuantParams) (vecmath.QuantMatrix, []vecmath.QuantMatrix, error) {
	centQ, err := vecmath.QuantizeMatrix(centroids, params)
	if err != nil {
		return vecmath.QuantMatrix{}, nil, err
	}
	cellQ := make([]vecmath.QuantMatrix, len(cellVecs))
	for c, vecs := range cellVecs {
		if cellQ[c], err = vecmath.QuantizeMatrix(vecs, params); err != nil {
			return vecmath.QuantMatrix{}, nil, err
		}
	}
	return centQ, cellQ, nil
}
