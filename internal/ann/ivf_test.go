package ann

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vecmath"
	"repro/internal/xrand"
)

func testVectors(n, d int, seed int64) vecmath.Matrix {
	r := xrand.New(seed)
	out := vecmath.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		v := out.Row(i)
		for j := range v {
			v[j] = r.NormFloat64()
		}
	}
	return out
}

func bruteForce(vectors vecmath.Matrix, q []float64, k int) []vecmath.IndexedValue {
	dists := make([]float64, vectors.Rows())
	for i := 0; i < vectors.Rows(); i++ {
		dists[i] = vecmath.SquaredL2(q, vectors.Row(i))
	}
	out := vecmath.SmallestK(dists, k)
	for i := range out {
		out[i].Value = math.Sqrt(out[i].Value)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(DefaultConfig(0, 1), vecmath.Matrix{}); err == nil {
		t.Error("empty vectors should error")
	}
	vecs := testVectors(10, 4, 1)
	if _, err := Build(Config{Cells: 0, Iterations: 5}, vecs); err == nil {
		t.Error("zero cells should error")
	}
	// More cells than vectors clamps.
	ix, err := Build(Config{Cells: 100, Iterations: 3, Seed: 1}, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumCells() > 10 {
		t.Errorf("cells = %d", ix.NumCells())
	}
}

func TestSearchFullProbeIsExact(t *testing.T) {
	vecs := testVectors(300, 8, 2)
	ix, err := Build(DefaultConfig(vecs.Rows(), 2), vecs)
	if err != nil {
		t.Fatal(err)
	}
	q := testVectors(1, 8, 3).Row(0)
	got := ix.Search(q, 5, ix.NumCells())
	want := bruteForce(vecs, q, 5)
	for i := range want {
		if got[i].Index != want[i].Index || math.Abs(got[i].Value-want[i].Value) > 1e-9 {
			t.Fatalf("full-probe search differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSearchRecall(t *testing.T) {
	vecs := testVectors(2000, 16, 4)
	ix, err := Build(DefaultConfig(vecs.Rows(), 4), vecs)
	if err != nil {
		t.Fatal(err)
	}
	queries := testVectors(50, 16, 5)
	hit, total := 0, 0
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		want := bruteForce(vecs, q, 10)
		wantSet := map[int]bool{}
		for _, w := range want {
			wantSet[w.Index] = true
		}
		for _, g := range ix.Search(q, 10, 8) {
			if wantSet[g.Index] {
				hit++
			}
		}
		total += 10
	}
	recall := float64(hit) / float64(total)
	if recall < 0.6 {
		t.Errorf("recall@10 with nprobe=8: %v", recall)
	}
	t.Logf("recall@10 nprobe=8: %.3f", recall)
}

func TestSearchEdgeCases(t *testing.T) {
	vecs := testVectors(20, 4, 6)
	ix, err := Build(DefaultConfig(vecs.Rows(), 7), vecs)
	if err != nil {
		t.Fatal(err)
	}
	q := vecs.Row(3)
	if got := ix.Search(q, 0, 1); got != nil {
		t.Error("k=0 should give nil")
	}
	got := ix.Search(q, 100, ix.NumCells())
	if len(got) != 20 {
		t.Errorf("k>n should clamp: %d", len(got))
	}
	if got[0].Index != 3 || got[0].Value != 0 {
		t.Errorf("query equal to a vector should find it first: %v", got[0])
	}
	// nprobe out of range is clamped, not an error.
	if got := ix.Search(q, 3, 0); len(got) == 0 {
		t.Error("nprobe=0 should still probe one cell")
	}
}

func TestBuildTableApproxMatchesExactAtFullProbe(t *testing.T) {
	emb := testVectors(500, 8, 8)
	reps := cluster.FPF(emb, 60, 0)
	cfg := Config{Cells: 8, Iterations: 5, Seed: 9}
	approx, err := BuildTableApprox(emb, reps, 3, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact := cluster.BuildTable(emb, reps, 3)
	for i := 0; i < emb.Rows(); i++ {
		for j := range exact.Neighbors[i] {
			a, e := approx.Neighbors[i][j], exact.Neighbors[i][j]
			if a.Rep != e.Rep || math.Abs(a.Dist-e.Dist) > 1e-9 {
				t.Fatalf("record %d neighbor %d: approx %v vs exact %v", i, j, a, e)
			}
		}
	}
}

func TestBuildTableApproxLowProbeCloseToExact(t *testing.T) {
	emb := testVectors(800, 16, 10)
	reps := cluster.FPF(emb, 100, 0)
	approx, err := BuildTableApprox(emb, reps, 1, 3, Config{Cells: 10, Iterations: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exact := cluster.BuildTable(emb, reps, 1)
	agree := 0
	for i := 0; i < emb.Rows(); i++ {
		if approx.Neighbors[i][0].Rep == exact.Neighbors[i][0].Rep {
			agree++
		}
	}
	frac := float64(agree) / float64(emb.Rows())
	if frac < 0.7 {
		t.Errorf("nearest-rep agreement at nprobe=3: %v", frac)
	}
	t.Logf("nearest-rep agreement at nprobe=3: %.3f", frac)
}

func TestBuildTableApproxValidation(t *testing.T) {
	emb := testVectors(50, 4, 12)
	if _, err := BuildTableApprox(emb, []int{0}, 0, 1, DefaultConfig(1, 1)); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := BuildTableApprox(emb, []int{99}, 1, 1, DefaultConfig(1, 1)); err == nil {
		t.Error("out-of-range rep should error")
	}
}
