package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	truth := []bool{true, true, false, false, true}
	returned := []int{0, 2} // one TP, one FP
	c := NewConfusion(truth, returned)
	if c.TP != 1 || c.FP != 1 || c.FN != 2 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.FalsePositiveRate(); got != 0.5 {
		t.Errorf("FPR = %v", got)
	}
	wantF1 := 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0/3)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	empty := NewConfusion([]bool{false, false}, nil)
	if empty.Precision() != 1 || empty.FalsePositiveRate() != 0 {
		t.Error("empty returned set should have precision 1, FPR 0")
	}
	noPos := NewConfusion([]bool{false, false}, []int{0})
	if noPos.Recall() != 1 {
		t.Error("no positives: recall should be 1")
	}
	if noPos.F1() != 1 { // precision 0... recall 1 -> F1 0? precision is 0 here
		// returned one record, zero TP: precision 0, recall 1 => F1 0.
		t.Skip() // handled below
	}
}

func TestF1Zero(t *testing.T) {
	c := Confusion{TP: 0, FP: 5, FN: 0, TN: 0}
	// precision 0, recall 1 -> F1 0.
	if got := c.F1(); got != 0 {
		t.Errorf("F1 = %v, want 0", got)
	}
}

// TestConfusionCountsSum: the four cells always partition the dataset.
func TestConfusionCountsSum(t *testing.T) {
	f := func(truthRaw []bool, idsRaw []uint8) bool {
		if len(truthRaw) == 0 {
			return true
		}
		var returned []int
		for _, id := range idsRaw {
			returned = append(returned, int(id)%len(truthRaw))
		}
		c := NewConfusion(truthRaw, returned)
		return c.TP+c.FP+c.TN+c.FN == len(truthRaw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(11, 10); math.Abs(got-10) > 1e-12 {
		t.Errorf("got %v", got)
	}
	if got := PercentError(-0.05, 0); math.Abs(got-5) > 1e-12 {
		t.Errorf("zero truth: %v", got)
	}
}
