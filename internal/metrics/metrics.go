// Package metrics implements the evaluation metrics the paper reports:
// precision, recall, F1, false positive rate, and percent error.
package metrics

import "math"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies a returned ID set against ground truth. truth[i]
// reports whether record i matches; returned lists the selected IDs.
func NewConfusion(truth []bool, returned []int) Confusion {
	sel := make(map[int]bool, len(returned))
	for _, id := range returned {
		sel[id] = true
	}
	var c Confusion
	for i, t := range truth {
		switch {
		case t && sel[i]:
			c.TP++
		case t && !sel[i]:
			c.FN++
		case !t && sel[i]:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 1 when nothing was returned (no false
// positives were asserted).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when there are no positives to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP/(TP+FP), the fraction of the returned set
// that does not match — the metric the paper reports for recall-target SUPG
// queries (lower is better). An empty returned set has FPR 0.
func (c Confusion) FalsePositiveRate() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.TP+c.FP)
}

// PercentError returns |est-truth|/|truth| in percent; if truth is zero it
// returns the absolute error in percent points.
func PercentError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est) * 100
	}
	return math.Abs(est-truth) / math.Abs(truth) * 100
}
