package tasti_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/tasti"
)

// TestSaveLoadQueryEquivalence is the persistence property test: an index
// restored from its snapshot must answer aggregation, SUPG selection, and
// limit queries bitwise-identically to the in-memory original — at every
// worker count, since the repository guarantees parallelism never changes
// results. Any divergence means Save/Load dropped or reordered state that
// queries observe.
func TestSaveLoadQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := tasti.GenerateDataset("night-street", 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)
	index, err := tasti.Build(tasti.PretrainedConfig(150, 5), ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := index.Save(&buf); err != nil {
		t.Fatal(err)
	}

	carCount := tasti.CountScore("car")
	hasCar := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 1
	}

	// Reference answers from the in-memory index.
	refScores, err := index.Propagate(carCount)
	if err != nil {
		t.Fatal(err)
	}
	refAgg, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.15, Delta: 0.05, MinSamples: 100, Seed: 7,
	}, ds.Len(), refScores, carCount, oracle)
	if err != nil {
		t.Fatal(err)
	}
	refSel, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: 200, Target: 0.9, Delta: 0.05, Seed: 8,
	}, ds.Len(), refScores, hasCar, oracle)
	if err != nil {
		t.Fatal(err)
	}
	refNear, refDist, err := index.PropagateNearest(carCount)
	if err != nil {
		t.Fatal(err)
	}
	refLim, err := tasti.FindLimit(10, refNear, refDist, hasCar, oracle)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 4} {
		loaded, err := tasti.LoadIndex(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("p=%d: load: %v", p, err)
		}
		loaded.SetParallelism(p)

		scores, err := loaded.Propagate(carCount)
		if err != nil {
			t.Fatalf("p=%d: propagate: %v", p, err)
		}
		for i, v := range refScores {
			if scores[i] != v {
				t.Fatalf("p=%d: propagated score [%d] = %v, want %v", p, i, scores[i], v)
			}
		}
		agg, err := tasti.EstimateAggregate(tasti.AggregateOptions{
			ErrTarget: 0.15, Delta: 0.05, MinSamples: 100, Seed: 7,
		}, ds.Len(), scores, carCount, oracle)
		if err != nil {
			t.Fatalf("p=%d: aggregate: %v", p, err)
		}
		if agg.Estimate != refAgg.Estimate || agg.HalfWidth != refAgg.HalfWidth || agg.LabelerCalls != refAgg.LabelerCalls {
			t.Fatalf("p=%d: aggregate %+v, want %+v", p, agg, refAgg)
		}
		sel, err := tasti.SelectWithRecall(tasti.SelectOptions{
			Budget: 200, Target: 0.9, Delta: 0.05, Seed: 8,
		}, ds.Len(), scores, hasCar, oracle)
		if err != nil {
			t.Fatalf("p=%d: select: %v", p, err)
		}
		if sel.Threshold != refSel.Threshold || len(sel.Returned) != len(refSel.Returned) {
			t.Fatalf("p=%d: select returned %d at %v, want %d at %v",
				p, len(sel.Returned), sel.Threshold, len(refSel.Returned), refSel.Threshold)
		}
		for i, id := range refSel.Returned {
			if sel.Returned[i] != id {
				t.Fatalf("p=%d: selected [%d] = %d, want %d", p, i, sel.Returned[i], id)
			}
		}
		near, dist, err := loaded.PropagateNearest(carCount)
		if err != nil {
			t.Fatalf("p=%d: propagate-nearest: %v", p, err)
		}
		for i := range refNear {
			if near[i] != refNear[i] || dist[i] != refDist[i] {
				t.Fatalf("p=%d: nearest propagation diverged at record %d", p, i)
			}
		}
		lim, err := tasti.FindLimit(10, near, dist, hasCar, oracle)
		if err != nil {
			t.Fatalf("p=%d: limit: %v", p, err)
		}
		if lim.OracleCalls != refLim.OracleCalls || len(lim.Found) != len(refLim.Found) {
			t.Fatalf("p=%d: limit %+v, want %+v", p, lim, refLim)
		}
		for i, id := range refLim.Found {
			if lim.Found[i] != id {
				t.Fatalf("p=%d: limit found [%d] = %d, want %d", p, i, lim.Found[i], id)
			}
		}
	}
}

// TestSnapshotErrorTaxonomyExported pins the public corruption contract: a
// truncated snapshot surfaces a typed error reachable through the facade's
// exported sentinels.
func TestSnapshotErrorTaxonomyExported(t *testing.T) {
	ds, err := tasti.GenerateDataset("night-street", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	index, err := tasti.Build(tasti.PretrainedConfig(20, 1), ds, tasti.NewOracle(ds, "o", tasti.MaskRCNNCost))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := index.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := tasti.LoadIndex(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated snapshot loaded")
	} else if !errors.Is(err, tasti.ErrSnapshotChecksum) && !errors.Is(err, tasti.ErrSnapshotTruncated) {
		t.Fatalf("truncated snapshot error %v is not in the exported taxonomy", err)
	}

	var ckpt bytes.Buffer
	if err := tasti.NewCheckpoint(tasti.PretrainedConfig(20, 1), ds).Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := tasti.LoadIndex(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, tasti.ErrSnapshotKind) {
		t.Fatalf("checkpoint-as-index error = %v, want ErrSnapshotKind", err)
	}
}
