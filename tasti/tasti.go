// Package tasti is the public API of this repository: trainable semantic
// indexes (TASTI) for machine-learning-based queries over unstructured data,
// after Kang et al., SIGMOD 2022.
//
// A TASTI index is built once per dataset from three ingredients: a target
// labeler (the expensive model or human annotator that turns raw records
// into structured annotations), a closeness heuristic over those annotations
// (a BucketKey), and a labeling budget. The index trains an embedding with a
// triplet loss so that records with close annotations embed close, annotates
// a small set of cluster representatives chosen by furthest-point-first
// clustering, and then answers arbitrary queries by propagating scores from
// the representatives to every record — no per-query proxy model training.
//
// The typical flow:
//
//	ds, _ := tasti.GenerateDataset("night-street", 20000, 1)
//	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)
//	cfg := tasti.DefaultConfig(600, 900, tasti.VideoBucketKey(0.5), 1)
//	index, _ := tasti.Build(cfg, ds, oracle)
//
//	// Aggregation: average cars per frame with an error guarantee.
//	scores, _ := index.Propagate(tasti.CountScore("car"))
//	res, _ := tasti.EstimateAggregate(tasti.AggregateOptions{ErrTarget: 0.05, Delta: 0.05, Seed: 2},
//	    ds.Len(), scores, tasti.CountScore("car"), oracle)
//
// The same index serves selection queries with recall guarantees
// (SelectWithRecall), limit queries over rare events (FindLimit), and
// guarantee-free threshold selection (SelectByThreshold). Labels paid for
// during query execution can be folded back into the index with Crack.
package tasti

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ingest"
	"repro/internal/labeler"
	"repro/internal/labeler/store"
	"repro/internal/parallel"
	"repro/internal/query/aggregation"
	"repro/internal/query/limitq"
	"repro/internal/query/predagg"
	"repro/internal/query/selection"
	"repro/internal/query/supg"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
	"repro/internal/telemetry/ledger"
	"repro/internal/triplet"
	"repro/internal/vecmath"
)

// Version identifies this release of the repository — the value
// tasti_build_info exposes so every scrape names the running binary.
const Version = "0.9.0"

// SnapshotFormatVersion is the framed snapshot container's current format
// version (the write-side version; older versions back to
// snapshot.MinVersion still load).
const SnapshotFormatVersion = snapshot.Version

// Data model.
type (
	// Record is one unstructured data record.
	Record = dataset.Record
	// Dataset is a corpus of records with hidden ground truth.
	Dataset = dataset.Dataset
	// Annotation is a target labeler's structured output.
	Annotation = dataset.Annotation
	// Box is one detected object in a video annotation.
	Box = dataset.Box
	// VideoAnnotation is the object-detection schema.
	VideoAnnotation = dataset.VideoAnnotation
	// TextAnnotation is the question-to-SQL schema.
	TextAnnotation = dataset.TextAnnotation
	// SpeechAnnotation is the speaker-attribute schema.
	SpeechAnnotation = dataset.SpeechAnnotation
)

// Labelers.
type (
	// Labeler produces annotations for record IDs; implementations meter
	// and bill each invocation.
	Labeler = labeler.Labeler
	// CostModel is a labeler's per-invocation cost.
	CostModel = labeler.CostModel
	// ContextLabeler is the optional context-aware extension of Labeler;
	// the reliability middleware implements it so cancellation reaches
	// retries, backoff sleeps, and in-flight calls.
	ContextLabeler = labeler.ContextLabeler
)

// Calibrated per-call labeler costs from the paper's Section 3.4.
var (
	// MaskRCNNCost bills ~1/3 s per frame (3 fps).
	MaskRCNNCost = labeler.MaskRCNNCost
	// SSDCost bills a cheap detector at ~150 fps.
	SSDCost = labeler.SSDCost
	// HumanCost bills crowd annotation at ~$0.07 per record.
	HumanCost = labeler.HumanCost
)

// NewOracle wraps a dataset's ground truth as an exact target labeler.
func NewOracle(ds *Dataset, name string, cost CostModel) Labeler {
	return labeler.NewOracle(ds, name, cost)
}

// NewCountingLabeler wraps a labeler with invocation accounting; use it to
// meter query costs.
func NewCountingLabeler(inner Labeler) *labeler.Counting {
	return labeler.NewCounting(inner)
}

// NewCachingLabeler wraps a labeler with a result cache. Run a query
// through it, then read CachedIDs/Label to collect every annotation the
// query paid for — the input to Index.CrackAll.
func NewCachingLabeler(inner Labeler) *labeler.Cached {
	return labeler.NewCached(inner)
}

// NewBudgetedLabeler wraps a labeler with a hard invocation budget; once
// spent, calls fail with ErrBudgetExhausted (terminal but resumable — see
// BuildResumable).
func NewBudgetedLabeler(inner Labeler, n int64) *labeler.Budgeted {
	return labeler.NewBudgeted(inner, n)
}

// GenerateDataset builds one of the synthetic evaluation corpora:
// "night-street", "taipei", "amsterdam", "wikisql", or "common-voice".
func GenerateDataset(name string, size int, seed int64) (*Dataset, error) {
	return dataset.Generate(name, size, seed)
}

// Reliability: fault injection, retry/backoff, per-call deadlines, and
// circuit breaking for labeler tiers, plus resumable builds. See
// docs/RELIABILITY.md for the failure model and composition order.
type (
	// RetryPolicy parameterizes retry middleware: exponential backoff with
	// seeded jitter and a hard attempt budget. Set Config.Retry to retry
	// transient labeler faults during index construction.
	RetryPolicy = labeler.RetryPolicy
	// BreakerPolicy parameterizes a circuit breaker over a labeler tier.
	BreakerPolicy = labeler.BreakerPolicy
	// BreakerState is a circuit breaker's position: closed, open, or
	// half-open.
	BreakerState = labeler.BreakerState
	// Breaker is a circuit-breaking labeler wrapper; its State/Trips/
	// Rejected methods feed health endpoints.
	Breaker = labeler.Breaker
	// FlakyConfig parameterizes deterministic fault injection for chaos
	// testing.
	FlakyConfig = labeler.FlakyConfig
	// FaultStats counts the faults a flaky labeler injected.
	FaultStats = labeler.FaultStats
	// Checkpoint captures a build's labeling progress for resumption.
	Checkpoint = core.Checkpoint
	// BuildInterruptedError reports a build stopped by an unrecoverable
	// labeler failure; it carries the checkpoint that resumes it.
	BuildInterruptedError = core.BuildInterruptedError
)

// Labeler failure taxonomy. Transient faults, per-call timeouts, and breaker
// rejections are retryable; permanent per-record failures and exhausted
// budgets are terminal.
var (
	// ErrTransient marks a retryable labeler fault.
	ErrTransient = labeler.ErrTransient
	// ErrPermanent marks a record the labeler can never annotate.
	ErrPermanent = labeler.ErrPermanent
	// ErrLabelTimeout marks a call cut off by a per-call deadline.
	ErrLabelTimeout = labeler.ErrLabelTimeout
	// ErrBreakerOpen marks a call rejected by an open circuit breaker.
	ErrBreakerOpen = labeler.ErrBreakerOpen
	// ErrBudgetExhausted marks a spent invocation budget (terminal but
	// resumable: see BuildResumable).
	ErrBudgetExhausted = labeler.ErrBudgetExhausted
	// IsRetryable classifies a labeler error as worth retrying.
	IsRetryable = labeler.IsRetryable
	// DefaultRetryPolicy is a retry policy tuned for the simulated tier.
	DefaultRetryPolicy = labeler.DefaultRetryPolicy
)

// NewFlakyLabeler wraps a labeler with deterministic fault injection: seeded
// transient errors, latency spikes, and permanently unlabelable records.
func NewFlakyLabeler(inner Labeler, cfg FlakyConfig) *labeler.Flaky {
	return labeler.NewFlaky(inner, cfg)
}

// NewRetryLabeler wraps a labeler with budgeted, jittered-backoff retries of
// retryable errors.
func NewRetryLabeler(inner Labeler, pol RetryPolicy) *labeler.Retry {
	return labeler.NewRetry(inner, pol)
}

// NewDeadlineLabeler wraps a labeler with a per-call timeout; calls over the
// limit fail with ErrLabelTimeout (retryable).
func NewDeadlineLabeler(inner Labeler, timeout time.Duration) *labeler.Deadline {
	return labeler.NewDeadline(inner, timeout)
}

// NewBreakerLabeler wraps a labeler with a circuit breaker that fails fast
// while the tier is unhealthy.
func NewBreakerLabeler(inner Labeler, pol BreakerPolicy) *Breaker {
	return labeler.NewBreaker(inner, pol)
}

// LabelerWithContext binds a labeler to a context, so a canceled caller —
// e.g. a disconnected HTTP client — stops the labeling loops inside query
// processors that know nothing about contexts.
func LabelerWithContext(ctx context.Context, inner Labeler) Labeler {
	return labeler.WithContext(ctx, inner)
}

// NewCheckpoint returns an empty build checkpoint bound to a configuration;
// BuildResumable fills it as labeling progresses.
func NewCheckpoint(cfg Config, ds *Dataset) *Checkpoint {
	return core.NewCheckpoint(cfg, ds)
}

// LoadCheckpoint deserializes a checkpoint saved with Checkpoint.Save.
var LoadCheckpoint = core.LoadCheckpoint

// BuildResumable is Build with checkpointed labeling: a failure that
// survives the configured retry/degradation policy returns a
// *BuildInterruptedError carrying a checkpoint, and re-invoking with that
// checkpoint resumes the build, spending zero labeler invocations on
// already-labeled records. A nil checkpoint starts fresh.
func BuildResumable(cfg Config, ds *Dataset, lab Labeler, ckpt *Checkpoint) (*Index, error) {
	return core.BuildResumable(cfg, ds, lab, ckpt)
}

// Index construction.
type (
	// Config parameterizes index construction. Config.Parallelism bounds
	// the worker count for construction, propagation, and cracking (<= 0
	// uses all CPUs); for a fixed Seed the built index is bitwise identical
	// at every parallelism level, so the knob only trades wall-clock time
	// for CPU. See docs/ARCHITECTURE.md for the pipeline's concurrency
	// design.
	Config = core.Config
	// Index is a built TASTI index.
	Index = core.Index
	// ScoreFunc turns an annotation into a numeric query-specific score.
	ScoreFunc = core.ScoreFunc
	// BucketKey discretizes annotations into closeness buckets for triplet
	// training.
	BucketKey = triplet.BucketKey
	// TrainConfig holds the triplet-training hyperparameters within Config.
	TrainConfig = triplet.Config
)

// DefaultConfig returns the full TASTI-T configuration: trainingBudget
// records labeled for triplet training, numReps cluster representatives
// annotated, FPF mining and clustering on.
func DefaultConfig(trainingBudget, numReps int, key BucketKey, seed int64) Config {
	return core.DefaultConfig(trainingBudget, numReps, key, seed)
}

// PretrainedConfig returns the TASTI-PT variant, which skips triplet
// training and spends no labels on a training set.
func PretrainedConfig(numReps int, seed int64) Config {
	return core.PretrainedConfig(numReps, seed)
}

// Build constructs an index over ds, spending target-labeler invocations
// through lab.
func Build(cfg Config, ds *Dataset, lab Labeler) (*Index, error) {
	return core.Build(cfg, ds, lab)
}

// LoadIndex deserializes an index saved with Index.Save.
var LoadIndex = core.Load

// Sharded serving. A built index can be partitioned into contiguous
// record-range shards that answer every query through a scatter-gather layer
// bitwise identical to the unsharded index — the unit of parallel building,
// snapshotting, and zero-downtime per-shard reload in cmd/tastiserve. See
// docs/SHARDING.md for the assignment function, determinism contract, and
// reload runbook.
type (
	// ShardedIndex is a sharded TASTI index: N self-contained shards behind
	// one scatter-gather query surface with per-shard hot swap.
	ShardedIndex = shard.Index
	// Shard is one contiguous record-range slice of a sharded index.
	Shard = shard.Shard
)

// SplitIndex partitions a built index into n contiguous record-range shards,
// taking ownership of ix (it must not be used afterwards). SplitIndex(ix, 1)
// is the identity sharding.
func SplitIndex(ix *Index, n int) (*ShardedIndex, error) { return shard.Split(ix, n) }

// LoadShardedIndex deserializes a sharded index saved with
// ShardedIndex.Save ("tasti-shard-index" containers). Single-index snapshots
// fail with ErrSnapshotKind; load those with LoadIndex and re-shard with
// SplitIndex.
var LoadShardedIndex = shard.Load

// LoadShard lifts one shard out of a sharded snapshot without decoding its
// peers — the input to ShardedIndex.ReplaceShard for per-shard hot reload.
var LoadShard = shard.LoadShard

// ShardSnapshotKind is the framed-container artifact type of sharded
// snapshots.
const ShardSnapshotKind = shard.IndexKind

// KernelName reports which vector-distance kernel implementation this
// process dispatches to (e.g. "avx2+fma" or "scalar"). Observability only:
// every implementation is bitwise identical.
func KernelName() string { return vecmath.KernelName() }

// Durable persistence. Index.Save, Checkpoint.Save, and Dataset.Save write a
// framed, checksummed container (magic, format version, per-section and
// whole-file CRC-32C); the Load functions verify it end to end and classify
// every corruption with the typed errors below. See docs/RELIABILITY.md
// "Persistence format" for the layout, version policy, and error taxonomy.
var (
	// ErrSnapshotBadMagic marks a file that is not a framed snapshot (and,
	// where a legacy fallback exists, also failed legacy decoding).
	ErrSnapshotBadMagic = snapshot.ErrBadMagic
	// ErrSnapshotKind marks a framed snapshot of the wrong artifact type,
	// e.g. a checkpoint file passed to LoadIndex.
	ErrSnapshotKind = snapshot.ErrKind
	// ErrSnapshotVersion marks a format version this build cannot read.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum marks content that fails CRC verification.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotTruncated marks a snapshot cut short, e.g. by a torn write.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotFrameTooLarge marks a section length beyond the decoder's
	// sanity cap — corrupt or hostile, either way not worth allocating for.
	ErrSnapshotFrameTooLarge = snapshot.ErrFrameTooLarge
)

// WriteFileAtomic writes a file through write and atomically replaces path
// with the result: temp file in the same directory, fsync, rename, directory
// fsync. A crash mid-write leaves the previous file intact; readers never
// observe a partial file. All the repository's durable artifacts (index
// snapshots, build checkpoints, generated corpora, traces) go through it.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return snapshot.WriteFile(path, write)
}

// ReadSnapshotFile opens path and passes it to read, recording load
// telemetry. Pair with LoadIndex/LoadCheckpoint/LoadDataset.
func ReadSnapshotFile(path string, read func(r io.Reader) error) error {
	return snapshot.ReadFile(path, read)
}

// SetSnapshotTelemetry points the persistence layer's save/load counters and
// latency histograms at reg (nil disables them). Process-wide, like
// SetPoolTelemetry.
func SetSnapshotTelemetry(reg *MetricsRegistry) { snapshot.SetTelemetry(reg) }

// Closeness heuristics for the built-in schemas.
var (
	// VideoBucketKey groups frames by per-class object counts and coarse
	// positions (cell is the position grid size in [0,1]).
	VideoBucketKey = triplet.VideoBucketKey
	// TextBucketKey groups questions by SQL operator and predicate count.
	TextBucketKey = triplet.TextBucketKey
	// SpeechBucketKey groups snippets by speaker gender and age decade.
	SpeechBucketKey = triplet.SpeechBucketKey
)

// Built-in scoring functions.
var (
	// CountScore counts boxes of a class in a video annotation.
	CountScore = core.CountScore
	// MatchScore converts a predicate into a 0/1 selection score.
	MatchScore = core.MatchScore
	// AvgXScore scores a frame by its objects' mean x-position.
	AvgXScore = core.AvgXScore
)

// Query processing.
type (
	// AggregateOptions configures EstimateAggregate.
	AggregateOptions = aggregation.Options
	// AggregateResult is EstimateAggregate's output.
	AggregateResult = aggregation.Result
	// SelectOptions configures SelectWithRecall and SelectWithPrecision.
	SelectOptions = supg.Options
	// SelectResult is the SUPG output.
	SelectResult = supg.Result
	// LimitResult is FindLimit's output.
	LimitResult = limitq.Result
	// ThresholdResult is SelectByThreshold's output.
	ThresholdResult = selection.Result
)

// EstimateAggregate estimates the mean of score over n records with an
// empirical-Bernstein error guarantee, using proxy as a control variate
// (nil runs plain uniform sampling).
func EstimateAggregate(opts AggregateOptions, n int, proxy []float64, score func(Annotation) float64, lab Labeler) (AggregateResult, error) {
	return aggregation.Estimate(opts, n, proxy, score, lab)
}

// SelectWithRecall returns a record set containing at least a target
// fraction of all records matching pred, with probability 1-Delta, spending
// a fixed labeler budget (SUPG recall-target).
func SelectWithRecall(opts SelectOptions, n int, proxy []float64, pred func(Annotation) bool, lab Labeler) (SelectResult, error) {
	return supg.RecallTarget(opts, n, proxy, pred, lab)
}

// SelectWithPrecision returns the largest record set whose precision clears
// the target with probability 1-Delta (SUPG precision-target).
func SelectWithPrecision(opts SelectOptions, n int, proxy []float64, pred func(Annotation) bool, lab Labeler) (SelectResult, error) {
	return supg.PrecisionTarget(opts, n, proxy, pred, lab)
}

// FindLimit scans records in descending proxy-score order (ties broken by
// tieDist, then ID) until limit records matching pred are found.
func FindLimit(limit int, proxy, tieDist []float64, pred func(Annotation) bool, lab Labeler) (LimitResult, error) {
	return limitq.Run(limit, proxy, tieDist, pred, lab)
}

// FindLimitOpts is FindLimit with instrumentation options.
func FindLimitOpts(opts LimitOptions, limit int, proxy, tieDist []float64, pred func(Annotation) bool, lab Labeler) (LimitResult, error) {
	return limitq.RunOpts(opts, limit, proxy, tieDist, pred, lab)
}

// FindLimitScan is FindLimit over a caller-supplied scan order — typically
// ShardedIndex.LimitOrder's merge of per-shard sorted runs, which is bitwise
// identical to the order FindLimit computes itself.
func FindLimitScan(opts LimitOptions, limit int, order []int, pred func(Annotation) bool, lab Labeler) (LimitResult, error) {
	return limitq.RunScan(opts, limit, order, pred, lab)
}

// Observability: a dependency-free metrics registry and span tracer that
// every layer is instrumented against — build phases, reliability
// middleware, ANN probes, the worker pool, and query execution. All
// instruments are nil-safe (a disabled registry costs one branch) and
// record-only (telemetry-on builds are bitwise identical to telemetry-off).
// See docs/OBSERVABILITY.md for the metric catalogue and span taxonomy.
type (
	// MetricsRegistry owns a process's counters, gauges, and histograms and
	// renders them in Prometheus text format (cmd/tastiserve's /metrics).
	MetricsRegistry = telemetry.Registry
	// Trace is a tree of timed spans; cmd/tastiquery and cmd/tastibench
	// dump it with -trace-out.
	Trace = telemetry.Trace
	// Span is one named, timed node of a Trace; Config.TraceSpan parents
	// the build's per-phase spans.
	Span = telemetry.Span
	// LimitOptions carries FindLimitOpts instrumentation.
	LimitOptions = limitq.Options
	// MetricCounter is a monotonically-increasing atomic counter.
	MetricCounter = telemetry.Counter
	// MetricGauge is an atomic float gauge.
	MetricGauge = telemetry.Gauge
	// MetricHistogram is a fixed-bucket histogram with quantile readout.
	MetricHistogram = telemetry.Histogram
)

// NewMetricsRegistry returns an empty enabled metrics registry. Pass it via
// Config.Telemetry, query Options.Telemetry, and the SetTelemetry methods
// on the reliability middleware; a nil *MetricsRegistry everywhere disables
// collection.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefLatencyBuckets is the default histogram bucket layout for latencies,
// spanning 100µs to 30s roughly logarithmically.
var DefLatencyBuckets = telemetry.DefLatencyBuckets

// NewTrace starts a span tree rooted at a span named name.
func NewTrace(name string) *Trace { return telemetry.NewTrace(name) }

// Request-scoped observability: per-request trace retention, deterministic
// sampling, a Prometheus text-format parser for scrapers, and the per-tenant
// cost ledger behind cmd/tastiserve's /admin/traces and /admin/ledger. All
// of it is record-only — nothing here feeds back into query execution, so
// sampled and unsampled requests produce bitwise-identical results.
type (
	// SpanSnapshot is the serialized form of one span (the /admin/traces and
	// -trace-out schema).
	SpanSnapshot = telemetry.SpanSnapshot
	// TraceSampler deterministically admits a fixed fraction of requests for
	// trace retention.
	TraceSampler = telemetry.Sampler
	// TraceRing is a bounded lock-free ring of retained request traces.
	TraceRing = telemetry.TraceRing
	// TraceEntry is one retained trace, rendered at read time.
	TraceEntry = telemetry.TraceEntry
	// PromFamily is one parsed metric family of a /metrics exposition.
	PromFamily = telemetry.PromFamily
	// PromSample is one parsed sample line of a /metrics exposition.
	PromSample = telemetry.PromSample
	// CostLedger attributes query cost per request and per tenant with a
	// conservation invariant (per-tenant sums equal the global books).
	CostLedger = ledger.Ledger
	// LedgerEntry is the cost record for one finished request.
	LedgerEntry = ledger.Entry
	// LedgerTotals is the rolled-up spend for one tenant or the process.
	LedgerTotals = ledger.Totals
	// LedgerSnapshot is the /admin/ledger payload.
	LedgerSnapshot = ledger.Snapshot
	// WALDiskStats is the WAL's on-disk footprint (the WAL-lag gauges).
	WALDiskStats = ingest.DiskStats
)

var (
	// NewTraceID returns a fresh random 16-hex-char trace identifier.
	NewTraceID = telemetry.NewTraceID
	// NewTraceSampler returns a sampler admitting roughly rate of requests.
	NewTraceSampler = telemetry.NewSampler
	// NewTraceRing returns a ring retaining the last capacity traces.
	NewTraceRing = telemetry.NewTraceRing
	// NewCostLedger returns a ledger retaining the last n request entries.
	NewCostLedger = ledger.New
	// ParsePrometheus parses a text-format 0.0.4 exposition the way a
	// scraper would (used by cmd/tastistat and the /metrics tests).
	ParsePrometheus = telemetry.ParsePrometheus
	// PromFamilyNames returns the sorted family names of a parsed scrape.
	PromFamilyNames = telemetry.FamilyNames
)

// SetPoolTelemetry points the shared worker pool's utilization metrics at
// reg (nil disables them). The pool is process-wide, so this is too.
func SetPoolTelemetry(reg *MetricsRegistry) { parallel.SetTelemetry(reg) }

// SelectByThreshold answers a selection query without guarantees: it labels
// a validation sample, picks the proxy threshold maximizing F1, and returns
// every record above it.
func SelectByThreshold(n int, proxy []float64, validationSize int, pred func(Annotation) bool, lab Labeler, seed int64) (ThresholdResult, error) {
	return selection.Threshold(n, proxy, validationSize, pred, lab, seed)
}

// Cross-query label amortization: a concurrency-safe record→annotation store
// shared by every query processor, with singleflight coalescing (concurrent
// requests for the same record issue exactly one oracle call) and a global
// budget manager with per-tenant admission. Exhaustion mid-query is a
// graceful outcome — aggregation and selection return partial estimates
// flagged Degraded, limit queries return the verified prefix — and the store
// persists as its own snapshot container so labels bought today are free
// tomorrow. See docs/RELIABILITY.md "Label budgets and degraded answers".
type (
	// LabelStore is the cross-query record→annotation store.
	LabelStore = store.Store
	// LabelStoreOptions configures NewLabelStore and LoadLabelStore.
	LabelStoreOptions = store.Options
	// BudgetManager admits oracle spend against global and per-tenant caps,
	// debiting at call time and refunding failed calls.
	BudgetManager = store.Budget
	// BudgetConfig parameterizes a BudgetManager; zero or negative caps are
	// unlimited.
	BudgetConfig = store.BudgetConfig
)

var (
	// NewLabelStore returns an empty label store.
	NewLabelStore = store.New
	// LoadLabelStore deserializes a store saved with LabelStore.Save,
	// verifying frame and whole-file checksums.
	LoadLabelStore = store.Load
	// LoadLabelStoreFile is LoadLabelStore over a snapshot file on disk.
	LoadLabelStoreFile = store.LoadFile
	// NewBudgetManager returns a budget manager over cfg.
	NewBudgetManager = store.NewBudget
	// ErrLabelStoreSaturated marks a label request rejected because the
	// store's in-flight table is full — backpressure, not failure (HTTP 429).
	ErrLabelStoreSaturated = store.ErrSaturated
)

// LabelStoreKind is the framed-container artifact type of label-store
// snapshots.
const LabelStoreKind = store.Kind

// BudgetUnlimited disables a budget cap when assigned to BudgetConfig.
const BudgetUnlimited = store.Unlimited

// Grouped aggregation.
type (
	// GroupByOptions configures EstimateGroupedAggregate.
	GroupByOptions = aggregation.GroupByOptions
	// GroupByResult maps group keys to their estimates.
	GroupByResult = aggregation.GroupByResult
)

// EstimateGroupedAggregate estimates the mean of score within each group at
// a fixed labeler budget, stratifying the sample by predicted groups —
// typically Index.PropagateVote output — to sharpen rare groups.
func EstimateGroupedAggregate(opts GroupByOptions, n int, proxyGroups []string, groupOf func(Annotation) string, score func(Annotation) float64, lab Labeler) (GroupByResult, error) {
	return aggregation.EstimateGroups(opts, n, proxyGroups, groupOf, score, lab)
}

// Predicate-aggregation queries (the extension the paper's Section 2.2
// points to): estimate the mean of a score over only the records matching a
// predicate, both requiring the target labeler.
type (
	// PredicateAggregateOptions configures EstimateAggregateWithPredicate.
	PredicateAggregateOptions = predagg.Options
	// PredicateAggregateResult is its output.
	PredicateAggregateResult = predagg.Result
)

// EstimateAggregateWithPredicate estimates E[score | pred] with stratified
// two-phase sampling driven by the proxy scores, at a fixed labeler budget.
// Stratify by a proxy that carries the score's magnitude (e.g. propagated
// counts), not just the predicate probability.
func EstimateAggregateWithPredicate(opts PredicateAggregateOptions, n int, proxy []float64, pred func(Annotation) bool, score func(Annotation) float64, lab Labeler) (PredicateAggregateResult, error) {
	return predagg.Estimate(opts, n, proxy, pred, score, lab)
}

// Streaming ingest: the crash-safe write path of internal/ingest. A WAL
// (write-ahead log in the snapshot frame format) makes appends durable before
// they are acked, an Ingester batches them into the index under the caller's
// serialization lock, a DriftDetector watches how far recent appends land
// from their nearest representative, and a Refresher re-cracks a cloned index
// in the background and hot-swaps it. See docs/RELIABILITY.md for the WAL
// format and the replay/truncation semantics.
type (
	// WAL is the crash-safe append log: a directory of checksummed segments.
	WAL = ingest.WAL
	// WALOptions tunes OpenWAL; the zero value is usable.
	WALOptions = ingest.WALOptions
	// IngestBatch is one WAL frame: a contiguous run of appended records.
	IngestBatch = ingest.Batch
	// ReplayStats reports what ReplayWAL recovered and where it stopped.
	ReplayStats = ingest.ReplayStats
	// Ingester is the single-writer streaming append pipeline; a nil Submit
	// error is a durability receipt.
	Ingester = ingest.Ingester
	// IngestConfig wires an Ingester.
	IngestConfig = ingest.Config
	// DriftDetector compares recent appends' nearest-representative distance
	// against the build-time baseline.
	DriftDetector = ingest.DriftDetector
	// Refresher re-cracks a cloned index in the background and swaps it in.
	Refresher = ingest.Refresher
	// RefreshConfig wires a Refresher.
	RefreshConfig = ingest.RefreshConfig
	// RefreshStats summarizes one refresh pass.
	RefreshStats = ingest.RefreshStats
	// AnnotationEnvelope is the tagged JSON form of an Annotation, used by
	// the /ingest HTTP body.
	AnnotationEnvelope = dataset.AnnotationEnvelope
)

var (
	// OpenWAL opens (creating if needed) a WAL directory whose next record is
	// nextID, rotating to a fresh segment.
	OpenWAL = ingest.OpenWAL
	// ReplayWAL walks a WAL directory and hands every acked batch at or above
	// record `from` to apply.
	ReplayWAL = ingest.Replay
	// NewIngester builds an Ingester; call Start to launch its writer loop.
	NewIngester = ingest.New
	// NewDriftDetector builds a drift detector over a sliding window of
	// nearest-representative distances.
	NewDriftDetector = ingest.NewDriftDetector
	// NewRefresher builds a background refresher.
	NewRefresher = ingest.NewRefresher
	// AnnotationEnvelopeOf wraps an Annotation for JSON transport.
	AnnotationEnvelopeOf = dataset.EnvelopeOf
	// LoadDataset deserializes a corpus saved with Dataset.Save.
	LoadDataset = dataset.Load

	// ErrIngestQueueSaturated is Submit's backpressure signal (HTTP 429).
	ErrIngestQueueSaturated = ingest.ErrQueueSaturated
	// ErrIngestClosed is returned by Submit after Close.
	ErrIngestClosed = ingest.ErrClosed
	// ErrRefreshInProgress rejects a refresh while another is running.
	ErrRefreshInProgress = ingest.ErrRefreshInProgress
)
