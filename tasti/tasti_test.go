package tasti_test

import (
	"bytes"
	"testing"

	"repro/tasti"
)

// TestEndToEnd drives the public API the way the README's quickstart does:
// generate a corpus, build an index, and run all four query types plus
// persistence and cracking.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := tasti.GenerateDataset("night-street", 2500, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)

	cfg := tasti.DefaultConfig(400, 350, tasti.VideoBucketKey(0.5), 3)
	index, err := tasti.Build(cfg, ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if index.Stats.TotalLabelCalls() > 750 {
		t.Errorf("index spent %d labels, budgeted 750", index.Stats.TotalLabelCalls())
	}

	// Aggregation.
	carCount := tasti.CountScore("car")
	scores, err := index.Propagate(carCount)
	if err != nil {
		t.Fatal(err)
	}
	counting := tasti.NewCountingLabeler(oracle)
	agg, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.15, Delta: 0.05, MinSamples: 100, Seed: 4,
	}, ds.Len(), scores, carCount, counting)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for _, ann := range ds.Truth {
		truth += float64(ann.(tasti.VideoAnnotation).Count("car"))
	}
	truth /= float64(ds.Len())
	if diff := agg.Estimate - truth; diff > 0.3 || diff < -0.3 {
		t.Errorf("estimate %v far from truth %v", agg.Estimate, truth)
	}
	if counting.Calls() != agg.LabelerCalls {
		t.Errorf("metered %d calls, result says %d", counting.Calls(), agg.LabelerCalls)
	}

	// Selection with a recall guarantee.
	hasCar := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 1
	}
	selScores, err := index.Propagate(tasti.MatchScore(hasCar))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: 150, Target: 0.9, Delta: 0.05, Seed: 5,
	}, ds.Len(), selScores, hasCar, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Returned) == 0 {
		t.Error("selection returned nothing")
	}

	// Precision-target variant.
	if _, err := tasti.SelectWithPrecision(tasti.SelectOptions{
		Budget: 150, Target: 0.8, Delta: 0.05, Seed: 6,
	}, ds.Len(), selScores, hasCar, oracle); err != nil {
		t.Fatal(err)
	}

	// Limit query.
	limScores, limDists, err := index.PropagateNearest(carCount)
	if err != nil {
		t.Fatal(err)
	}
	manyCars := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 4
	}
	lim, err := tasti.FindLimit(3, limScores, limDists, manyCars, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !lim.Exhausted && len(lim.Found) != 3 {
		t.Errorf("limit found %d", len(lim.Found))
	}

	// Threshold selection without guarantees.
	if _, err := tasti.SelectByThreshold(ds.Len(), selScores, 100, hasCar, oracle, 7); err != nil {
		t.Fatal(err)
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := index.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tasti.LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.Propagate(carCount)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if scores[i] != again[i] {
			t.Fatal("loaded index propagates differently")
		}
	}

	// Cracking through the caching labeler.
	caching := tasti.NewCachingLabeler(oracle)
	if _, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.2, Delta: 0.05, MinSamples: 50, Seed: 8,
	}, ds.Len(), scores, carCount, caching); err != nil {
		t.Fatal(err)
	}
	paid := map[int]tasti.Annotation{}
	for _, id := range caching.CachedIDs() {
		ann, err := caching.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		paid[id] = ann
	}
	before := len(index.Table.Reps)
	index.CrackAll(paid)
	if len(index.Table.Reps) <= before {
		t.Error("cracking added no representatives")
	}
}

func TestPretrainedFacade(t *testing.T) {
	ds, err := tasti.GenerateDataset("common-voice", 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "crowd", tasti.HumanCost)
	index, err := tasti.Build(tasti.PretrainedConfig(120, 2), ds, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if index.Stats.TrainLabelCalls != 0 {
		t.Error("PT config spent training labels")
	}
	isMale := func(ann tasti.Annotation) bool {
		return ann.(tasti.SpeechAnnotation).Gender == "male"
	}
	if _, err := index.Propagate(tasti.MatchScore(isMale)); err != nil {
		t.Fatal(err)
	}
}
