package tasti_test

import (
	"fmt"
	"log"

	"repro/tasti"
)

// Example demonstrates the core flow: build one index, answer an
// aggregation query with an error guarantee.
func Example() {
	ds, err := tasti.GenerateDataset("night-street", 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)

	cfg := tasti.DefaultConfig(400, 400, tasti.VideoBucketKey(0.5), 1)
	cfg.Train = tasti.TrainConfig{Hidden: []int{64}, Margin: 1, Steps: 300, BatchSize: 16, LR: 3e-3, Seed: 1}
	index, err := tasti.Build(cfg, ds, oracle)
	if err != nil {
		log.Fatal(err)
	}

	carCount := tasti.CountScore("car")
	scores, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.2, Delta: 0.05, MinSamples: 100, Seed: 2,
	}, ds.Len(), scores, carCount, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate within ±0.2 of the true mean: %t\n", res.HalfWidth <= 0.2)
	// Output: estimate within ±0.2 of the true mean: true
}

// ExampleIndex_PropagateNearest shows the limit-query scoring: k=1
// propagation with distance tie-breaking.
func ExampleIndex_PropagateNearest() {
	ds, err := tasti.GenerateDataset("night-street", 2000, 3)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)
	index, err := tasti.Build(tasti.PretrainedConfig(200, 3), ds, oracle)
	if err != nil {
		log.Fatal(err)
	}

	scores, dists, err := index.PropagateNearest(tasti.CountScore("car"))
	if err != nil {
		log.Fatal(err)
	}
	manyCars := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 4
	}
	res, err := tasti.FindLimit(3, scores, dists, manyCars, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d matching frames\n", len(res.Found))
	// Output: found 3 matching frames
}

// ExampleSelectWithRecall shows guaranteed-recall selection over the text
// corpus with a crowd labeler.
func ExampleSelectWithRecall() {
	ds, err := tasti.GenerateDataset("wikisql", 2000, 5)
	if err != nil {
		log.Fatal(err)
	}
	crowd := tasti.NewOracle(ds, "crowd", tasti.HumanCost)
	cfg := tasti.DefaultConfig(250, 250, tasti.TextBucketKey(), 5)
	cfg.Train = tasti.TrainConfig{Hidden: []int{64}, Margin: 1, Steps: 300, BatchSize: 16, LR: 3e-3, Seed: 5}
	index, err := tasti.Build(cfg, ds, crowd)
	if err != nil {
		log.Fatal(err)
	}

	isSelect := func(ann tasti.Annotation) bool {
		return ann.(tasti.TextAnnotation).Operator == "SELECT"
	}
	scores, err := index.Propagate(tasti.MatchScore(isSelect))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: 100, Target: 0.9, Delta: 0.05, Seed: 6,
	}, ds.Len(), scores, isSelect, crowd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spent the whole budget: %t\n", res.OracleCalls == 100)
	// Output: spent the whole budget: true
}
