package repro_test

// One benchmark per table and figure of the paper's evaluation (Section 6).
// Each benchmark runs the corresponding experiment end to end at TinyScale
// so `go test -bench=.` regenerates every result series quickly; pass
// `-scale default` to cmd/tastibench for the full-size runs recorded in
// EXPERIMENTS.md. Use -benchtime=1x to run each experiment exactly once.

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := experiments.TinyScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, sc, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2IndexConstruction(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3CostVsPerf(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4Aggregation(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5SUPG(b *testing.B)              { benchExperiment(b, "fig5") }
func BenchmarkFig6Limit(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkTable1Costs(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig7PositionSelect(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8AvgPosition(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkTable2NoGuarantee(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3Cracking(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkFig9Factor(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10Lesion(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFig11Buckets(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12TrainExamples(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13EmbedDim(b *testing.B)         { benchExperiment(b, "fig13") }

// Ablation benches for this reproduction's own design choices (not paper
// figures): propagation k, FPF random mix, and the IVF distance table.
func BenchmarkExtraPropagationK(b *testing.B) { benchExperiment(b, "extra-k") }
func BenchmarkExtraRandomMix(b *testing.B)    { benchExperiment(b, "extra-mix") }
func BenchmarkExtraANNTable(b *testing.B)     { benchExperiment(b, "extra-ann") }
func BenchmarkExtraPredAgg(b *testing.B)      { benchExperiment(b, "extra-predagg") }
func BenchmarkExtraPrecision(b *testing.B)    { benchExperiment(b, "extra-prec") }
func BenchmarkExtraGroupBy(b *testing.B)      { benchExperiment(b, "extra-groupby") }
