// Quickstart: build a TASTI index over a synthetic traffic video and answer
// an aggregation query — "how many cars per frame, on average?" — with an
// error guarantee, spending a fraction of the target-labeler calls a
// full scan would need.
package main

import (
	"fmt"
	"log"

	"repro/tasti"
)

func main() {
	// 1. A corpus of unstructured records. Here: 8,000 synthetic frames of
	// a night-street-style traffic camera. The "unstructured" part is each
	// record's raw feature vector; the ground truth (object boxes) is
	// hidden behind the labeler.
	ds, err := tasti.GenerateDataset("night-street", 8000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The target labeler: the expensive model (Mask R-CNN here) whose
	// invocations we want to minimize. Wrapping it in a counter shows what
	// each step costs.
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)

	// 3. Build the index: 500 labels for triplet training, 700 annotated
	// cluster representatives, frames bucketed as "close" when their cars
	// agree in count and rough position.
	cfg := tasti.DefaultConfig(500, 700, tasti.VideoBucketKey(0.5), 42)
	index, err := tasti.Build(cfg, ds, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built with %d target-labeler calls\n", index.Stats.TotalLabelCalls())

	// 4. Query: average number of cars per frame, within ±0.1 with 95%
	// probability. The index propagates car counts from the annotated
	// representatives to every frame; those proxy scores drive the
	// EBS sampler as a control variate.
	carCount := tasti.CountScore("car")
	scores, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	counting := tasti.NewCountingLabeler(oracle)
	res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.1, Delta: 0.05, MinSamples: 100, Seed: 7,
	}, ds.Len(), scores, carCount, counting)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare against the exact answer and the exhaustive cost.
	exact := 0.0
	for _, ann := range ds.Truth {
		exact += float64(ann.(tasti.VideoAnnotation).Count("car"))
	}
	exact /= float64(ds.Len())
	fmt.Printf("estimate: %.3f ± %.3f cars/frame (truth %.3f)\n", res.Estimate, res.HalfWidth, exact)
	fmt.Printf("query cost: %d target calls vs %d for an exhaustive scan\n", res.LabelerCalls, ds.Len())
}
