// Streaming demonstrates live ingestion: a TASTI index is built over the
// first half of a video stream, new frames arrive and are appended with
// Index.AppendRecords (embedding + neighbor lists only — no new labels), and
// queries over the grown corpus keep working. The appended half's proxy
// quality is compared against a full rebuild.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/tasti"
)

func main() {
	const (
		total = 12000
		half  = total / 2
		seed  = 17
	)
	// The full stream, generated up front; the second half plays the role
	// of frames that arrive after the index was built.
	full, err := tasti.GenerateDataset("night-street", total, seed)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(full, "mask-rcnn", tasti.MaskRCNNCost)

	// Build over the first half only.
	first := &tasti.Dataset{
		Name:    full.Name,
		Records: full.Records[:half],
		Truth:   full.Truth[:half],
	}
	firstOracle := tasti.NewOracle(first, "mask-rcnn", tasti.MaskRCNNCost)
	index, err := tasti.Build(tasti.DefaultConfig(500, 700, tasti.VideoBucketKey(0.5), seed), first, firstOracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index over first %d frames (%d label calls)\n",
		half, index.Stats.TotalLabelCalls())

	// Stream in the second half, a batch at a time.
	const batch = 1000
	for start := half; start < total; start += batch {
		features := make([][]float64, 0, batch)
		for i := start; i < start+batch && i < total; i++ {
			features = append(features, full.Records[i].Features)
		}
		if _, err := index.AppendRecords(features); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("appended %d streamed frames (no labels spent); index now covers %d records\n",
		total-half, index.NumRecords())

	// Quality check: proxy-score correlation on the streamed half versus
	// ground truth, compared against an index rebuilt over everything.
	carCount := tasti.CountScore("car")
	scores, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := tasti.Build(tasti.DefaultConfig(500, 700, tasti.VideoBucketKey(0.5), seed), full, oracle)
	if err != nil {
		log.Fatal(err)
	}
	rebuiltScores, err := rebuilt.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]float64, total)
	for i, ann := range full.Truth {
		truth[i] = carCount(ann)
	}
	fmt.Printf("streamed-half rho^2: appended index %.3f vs full rebuild %.3f\n",
		rho2(scores[half:], truth[half:]), rho2(rebuiltScores[half:], truth[half:]))
	fmt.Printf("rebuild spent %d fresh label calls; appending spent none\n",
		rebuilt.Stats.TotalLabelCalls())
}

// rho2 is the squared Pearson correlation.
func rho2(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va == 0 || vb == 0 {
		return 0
	}
	r := cov / math.Sqrt(va*vb)
	return r * r
}
