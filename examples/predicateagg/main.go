// Predicateagg runs an aggregation query with an expensive predicate —
// "what is the average number of cars in frames that contain at least one
// car?" — where both the filter and the aggregate need the target labeler.
// This is the query class the paper's Section 2.2 notes was built on TASTI
// by follow-up work; here the TASTI index supplies the stratification signal
// for ABae-style two-phase sampling.
package main

import (
	"fmt"
	"log"

	"repro/tasti"
)

func main() {
	const (
		frames = 10000
		seed   = 31
		budget = 500
	)
	ds, err := tasti.GenerateDataset("night-street", frames, seed)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)

	index, err := tasti.Build(tasti.DefaultConfig(500, 700, tasti.VideoBucketKey(0.5), seed), ds, oracle)
	if err != nil {
		log.Fatal(err)
	}

	hasCar := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 1
	}
	carCount := tasti.CountScore("car")

	// Stratify by the propagated count scores: they encode both how likely
	// a frame is to match and how much it will contribute to the mean.
	proxy, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tasti.EstimateAggregateWithPredicate(
		tasti.PredicateAggregateOptions{Budget: budget, Strata: 5, PilotFraction: 0.3, Seed: seed + 1},
		ds.Len(), proxy, hasCar, carCount, oracle)
	if err != nil {
		log.Fatal(err)
	}

	// Exact answer for comparison.
	sum, matches := 0.0, 0
	for _, ann := range ds.Truth {
		if hasCar(ann) {
			sum += carCount(ann)
			matches++
		}
	}
	truth := sum / float64(matches)

	fmt.Printf("avg cars per car-containing frame: %.3f (truth %.3f)\n", res.Estimate, truth)
	fmt.Printf("estimated match fraction: %.3f (truth %.3f)\n",
		res.MatchFraction, float64(matches)/float64(ds.Len()))
	fmt.Printf("cost: %d target calls (budget %d) vs %d for an exhaustive scan\n",
		res.LabelerCalls, budget, ds.Len())
	fmt.Printf("budget allocation across proxy strata: %v\n", res.SamplesPerStratum)
}
