// Textselect runs a SUPG selection query with a recall guarantee over a
// WikiSQL-style text corpus: return at least 90% of the questions that parse
// to a COUNT query, with 95% confidence, spending a fixed budget of crowd
// annotations. The TASTI index was built for the corpus, not for this query
// — the same embeddings and representatives serve any predicate over the
// induced schema.
package main

import (
	"fmt"
	"log"

	"repro/tasti"
)

func main() {
	const (
		questions = 6000
		seed      = 23
	)
	ds, err := tasti.GenerateDataset("wikisql", questions, seed)
	if err != nil {
		log.Fatal(err)
	}
	// Crowd workers are the target labeler for text: each SQL annotation
	// costs about $0.07.
	crowd := tasti.NewOracle(ds, "crowd", tasti.HumanCost)

	index, err := tasti.Build(tasti.DefaultConfig(400, 500, tasti.TextBucketKey(), seed), ds, crowd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d crowd annotations (~$%.0f)\n",
		index.Stats.TotalLabelCalls(), float64(index.Stats.TotalLabelCalls())*0.07)

	// The selection predicate: questions that parse to a COUNT aggregate.
	isCount := func(ann tasti.Annotation) bool {
		return ann.(tasti.TextAnnotation).Operator == "COUNT"
	}
	scores, err := index.Propagate(tasti.MatchScore(isCount))
	if err != nil {
		log.Fatal(err)
	}

	counting := tasti.NewCountingLabeler(crowd)
	res, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: 200, Target: 0.9, Delta: 0.05, Seed: seed + 1,
	}, ds.Len(), scores, isCount, counting)
	if err != nil {
		log.Fatal(err)
	}

	// Score the returned set against ground truth.
	truePos, total := 0, 0
	selected := make(map[int]bool, len(res.Returned))
	for _, id := range res.Returned {
		selected[id] = true
	}
	for i, ann := range ds.Truth {
		if isCount(ann) {
			total++
			if selected[i] {
				truePos++
			}
		}
	}
	recall := float64(truePos) / float64(total)
	precision := float64(truePos) / float64(len(res.Returned))
	fmt.Printf("returned %d of %d questions: recall %.3f (target 0.90), precision %.3f\n",
		len(res.Returned), ds.Len(), recall, precision)
	fmt.Printf("query cost: %d crowd annotations (~$%.0f) vs $%.0f to label everything\n",
		res.OracleCalls, float64(res.OracleCalls)*0.07, float64(ds.Len())*0.07)
}
