// Videoagg reproduces the paper's motivating comparison on one dataset:
// answering an aggregation query with (a) uniform sampling, (b) a per-query
// proxy model trained for this one query, and (c) a TASTI index that needed
// no per-query training — showing the invocation counts side by side, plus
// how the same index immediately serves a second, different query.
package main

import (
	"fmt"
	"log"

	"repro/internal/proxy"
	"repro/internal/xrand"
	"repro/tasti"
)

const (
	frames = 10000
	seed   = 11
)

func main() {
	ds, err := tasti.GenerateDataset("taipei", frames, seed)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)
	carCount := tasti.CountScore("car")

	opts := tasti.AggregateOptions{ErrTarget: 0.08, Delta: 0.05, MinSamples: 100, Seed: seed + 1}
	estimate := func(name string, scores []float64) int64 {
		counting := tasti.NewCountingLabeler(oracle)
		res, err := tasti.EstimateAggregate(opts, ds.Len(), scores, carCount, counting)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %6d target calls  estimate %.3f\n", name, res.LabelerCalls, res.Estimate)
		return res.LabelerCalls
	}

	// (a) No proxy: plain uniform sampling with the EBS stopping rule.
	estimate("uniform sampling", nil)

	// (b) Per-query proxy: label a random TMAS, train a small regression
	// model for this one query, use its predictions as the control variate.
	// The 2,000 TMAS labels are extra, unshareable cost.
	r := xrand.New(seed + 2)
	tmas := xrand.SampleWithoutReplacement(r, ds.Len(), 2000)
	targets := make([]float64, len(tmas))
	for i, id := range tmas {
		ann, err := oracle.Label(id)
		if err != nil {
			log.Fatal(err)
		}
		targets[i] = carCount(ann)
	}
	// The proxy mirrors the paper's "tiny ResNet": a deliberately small
	// model, cheap enough to run over every record.
	proxyCfg := proxy.DefaultConfig(proxy.Regression, seed+3)
	proxyCfg.Hidden = 16
	proxyCfg.Epochs = 20
	model, err := proxy.Train(proxyCfg, ds, tmas, targets)
	if err != nil {
		log.Fatal(err)
	}
	proxyCarCalls := estimate("per-query proxy", model.Scores(ds))

	// (c) TASTI: build the index once (1,300 labels), reuse it for every
	// query over this video.
	index, err := tasti.Build(tasti.DefaultConfig(600, 1200, tasti.VideoBucketKey(0.5), seed+4), ds, oracle)
	if err != nil {
		log.Fatal(err)
	}
	carScores, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	tastiCarCalls := estimate("TASTI", carScores)
	fmt.Printf("TASTI index construction: %d target calls, shared across queries\n\n",
		index.Stats.TotalLabelCalls())

	// The same index answers a different query — buses instead of cars —
	// with no new training. A per-query proxy system would train another
	// model (and label another TMAS) here.
	busCount := tasti.CountScore("bus")
	busScores, err := index.Propagate(busCount)
	if err != nil {
		log.Fatal(err)
	}
	counting := tasti.NewCountingLabeler(oracle)
	busOpts := opts
	busOpts.ErrTarget = 0.04 // buses are rarer, so the count scale is smaller
	res, err := tasti.EstimateAggregate(busOpts, ds.Len(), busScores, busCount, counting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same index, new query (avg buses/frame): %.3f in %d target calls\n\n",
		res.Estimate, res.LabelerCalls)

	// The two-query bottom line: the per-query system pays a fresh TMAS per
	// query; TASTI's construction cost is shared.
	fmt.Println("two-query total (construction + queries):")
	// The proxy system would need a second TMAS and proxy for the bus
	// query; charitably assume its bus query then costs the same as
	// TASTI's.
	fmt.Printf("  per-query proxies: %d target calls (2 TMAS of %d + queries)\n",
		2*int64(len(tmas))+proxyCarCalls+res.LabelerCalls, len(tmas))
	fmt.Printf("  TASTI:             %d target calls (one index + queries)\n",
		index.Stats.TotalLabelCalls()+tastiCarCalls+res.LabelerCalls)
}
