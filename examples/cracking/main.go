// Cracking demonstrates TASTI's index cracking (paper Section 3.3): every
// target-labeler result a query pays for is folded back into the index as a
// new cluster representative, so later queries see better proxy scores for
// free. An aggregation query runs first; the labels it gathered then sharpen
// a selection query over the same video.
package main

import (
	"fmt"
	"log"

	"repro/tasti"
)

func main() {
	const (
		frames = 10000
		seed   = 5
	)
	ds, err := tasti.GenerateDataset("night-street", frames, seed)
	if err != nil {
		log.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "mask-rcnn", tasti.MaskRCNNCost)

	index, err := tasti.Build(tasti.DefaultConfig(500, 700, tasti.VideoBucketKey(0.5), seed), ds, oracle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d representatives\n", len(index.Table.Reps))

	hasCar := func(ann tasti.Annotation) bool {
		return ann.(tasti.VideoAnnotation).Count("car") >= 1
	}

	// Baseline: the selection query on the fresh index.
	fprBefore, err := runSelection(index, ds, hasCar, oracle, seed)
	if err != nil {
		log.Fatal(err)
	}

	// First query: estimate the average car count. Routing the labeler
	// through a cache collects every annotation the query pays for.
	carCount := tasti.CountScore("car")
	aggScores, err := index.Propagate(carCount)
	if err != nil {
		log.Fatal(err)
	}
	caching := tasti.NewCachingLabeler(oracle)
	aggRes, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: 0.08, Delta: 0.05, MinSamples: 100, Seed: seed + 3,
	}, ds.Len(), aggScores, carCount, caching)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregation query: %.3f cars/frame in %d target calls\n",
		aggRes.Estimate, aggRes.LabelerCalls)

	// Crack: insert the paid-for labels as new representatives.
	paid := make(map[int]tasti.Annotation)
	for _, id := range caching.CachedIDs() {
		ann, err := caching.Label(id) // cache hit, free
		if err != nil {
			log.Fatal(err)
		}
		paid[id] = ann
	}
	index.CrackAll(paid)
	fmt.Printf("cracked %d labels into the index (%d representatives now)\n",
		len(paid), len(index.Table.Reps))

	// Second query: the same selection, now on the cracked index.
	fprAfter, err := runSelection(index, ds, hasCar, oracle, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection FPR before cracking: %.2f%%, after: %.2f%%\n", fprBefore*100, fprAfter*100)
}

// runSelection executes the recall-target selection and returns its false
// positive rate against ground truth.
func runSelection(index *tasti.Index, ds *tasti.Dataset, pred func(tasti.Annotation) bool, oracle tasti.Labeler, seed int64) (float64, error) {
	scores, err := index.Propagate(tasti.MatchScore(pred))
	if err != nil {
		return 0, err
	}
	res, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: 250, Target: 0.9, Delta: 0.05, Seed: seed + 9,
	}, ds.Len(), scores, pred, oracle)
	if err != nil {
		return 0, err
	}
	fp := 0
	for _, id := range res.Returned {
		if !pred(ds.Truth[id]) {
			fp++
		}
	}
	if len(res.Returned) == 0 {
		return 0, nil
	}
	return float64(fp) / float64(len(res.Returned)), nil
}
