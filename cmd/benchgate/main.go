// Command benchgate compares a benchmark report produced by
// `tastibench -bench-json` against a committed baseline and fails when any
// benchmark regressed beyond the allowed ratio. It is the CI tripwire for
// the index-construction and propagation hot paths: the default ratio is
// deliberately generous (3.0x) so shared, noisy CI machines do not flake,
// while order-of-magnitude regressions — a kernel falling off its fast
// path, an accidental per-record allocation — still fail the build.
//
// Usage:
//
//	tastibench -bench-json current.json
//	benchgate -baseline BENCH_10.json -current current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// report mirrors the BenchReport JSON written by cmd/tastibench.
type report struct {
	GoVersion  string            `json:"go_version"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	Benchmarks map[string]result `json:"benchmarks"`
}

type result struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (required)")
		currentPath  = flag.String("current", "", "freshly measured report (required)")
		maxRatio     = flag.Float64("max-ratio", 3.0, "fail when current ns/op exceeds baseline ns/op by more than this factor")
		maxAllocs    = flag.Float64("max-alloc-ratio", 2.0, "fail when current allocs/op exceeds baseline allocs/op by more than this factor (allocation counts are deterministic, so this bound is tighter than the time bound)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %s: missing from current report\n", name)
			failed = true
			continue
		}
		timeRatio := ratio(cur.NsPerOp, base.NsPerOp)
		allocRatio := ratio(cur.AllocsPerOp, base.AllocsPerOp)
		status := "ok  "
		if timeRatio > *maxRatio || allocRatio > *maxAllocs {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %s: %d ns/op vs baseline %d (%.2fx, limit %.2fx); %d allocs/op vs %d (%.2fx, limit %.2fx)\n",
			status, name, cur.NsPerOp, base.NsPerOp, timeRatio, *maxRatio,
			cur.AllocsPerOp, base.AllocsPerOp, allocRatio, *maxAllocs)
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &r, nil
}

// ratio returns cur/base, treating a non-positive baseline as 1 so a zero
// baseline (e.g. allocs/op of 0) only fails when current is also above the
// limit in absolute terms — any current > 0 against base 0 yields +Inf-like
// behavior via the explicit branch instead of dividing by zero.
func ratio(cur, base int64) float64 {
	if base <= 0 {
		if cur <= 0 {
			return 1
		}
		return float64(cur)
	}
	return float64(cur) / float64(base)
}
