package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "GUIDE.md"), "# Guide\n")
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Readme",
		"Good: [guide](docs/GUIDE.md) and [anchored](docs/GUIDE.md#guide).",
		"External: [site](https://example.com/x.md) and [mail](mailto:a@b.c).",
		"Anchor only: [above](#readme).",
		"```",
		"fenced [fake](does/not/exist.md) is example syntax",
		"```",
		"Bad: [gone](docs/MISSING.md).",
	}, "\n"))
	write(t, filepath.Join(dir, "docs", "OTHER.md"),
		"Up-dir good: [readme](../README.md). Up-dir bad: [nope](../NOPE.md).\n")

	files, broken, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if files != 3 {
		t.Errorf("checked %d files, want 3", files)
	}
	if len(broken) != 2 {
		t.Fatalf("broken = %v, want exactly the two planted links", broken)
	}
	for _, want := range []string{"docs/MISSING.md", "../NOPE.md"} {
		found := false
		for _, b := range broken {
			if strings.Contains(b, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("broken list %v missing the planted %q", broken, want)
		}
	}
}

// TestRepositoryDocs runs the real check over this repository, so `go
// test` catches a broken doc link even before the dedicated CI step.
func TestRepositoryDocs(t *testing.T) {
	files, broken, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 {
		t.Fatal("found no markdown files in the repository")
	}
	for _, b := range broken {
		t.Error(b)
	}
}
