// Command docscheck verifies that every relative markdown link in the
// repository resolves to a file or directory that actually exists, so a
// rename or deletion cannot silently orphan the documentation graph
// (README → docs/*.md → each other). CI runs it on every PR.
//
// Usage:
//
//	go run ./cmd/docscheck           # check the tree rooted at .
//	go run ./cmd/docscheck -root dir
//
// External links (http, https, mailto) and pure in-page anchors (#…) are
// out of scope — the checker owns exactly what the repository owns. Links
// inside fenced code blocks are ignored: those are example syntax, not
// navigation. Exit status 1 lists every broken link as file:line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches the target of an inline markdown link or image:
// [text](target) / ![alt](target). Reference-style links are not used in
// this repository.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "directory tree to check")
	flag.Parse()
	files, broken, err := check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken links in %d markdown files\n", len(broken), files)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d markdown files, all relative links resolve\n", files)
}

// check walks every .md file under root and returns the file count plus
// one "path:line: message" entry per unresolvable relative link.
func check(root string) (files int, broken []string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		files++
		b, err := checkFile(path)
		if err != nil {
			return err
		}
		broken = append(broken, b...)
		return nil
	})
	return files, broken, err
}

func checkFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var broken []string
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if rel, ok := relativeTarget(target); ok {
				dest := filepath.Join(filepath.Dir(path), filepath.FromSlash(rel))
				if _, err := os.Stat(dest); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link %q", path, line, target))
				}
			}
		}
	}
	return broken, sc.Err()
}

// relativeTarget reports whether a link target is a repository-relative
// path this checker owns, returning it with any #fragment stripped.
func relativeTarget(target string) (string, bool) {
	switch {
	case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
		return "", false
	case strings.HasPrefix(target, "#"): // in-page anchor
		return "", false
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return "", false
	}
	return target, true
}
