// Command metricscheck verifies that the metric catalogue in
// docs/OBSERVABILITY.md and the metrics the code actually emits cannot
// drift apart: every tasti_* metric name found in non-test Go source must
// appear in a catalogue table row, and every catalogued name must still
// exist in source. CI runs it on every PR, so adding a metric without
// documenting it — or documenting one that was renamed away — fails the
// build with the exact names on each side.
//
// Usage:
//
//	go run ./cmd/metricscheck              # repo rooted at .
//	go run ./cmd/metricscheck -root dir -docs docs/OBSERVABILITY.md
//
// Source names are matched as tasti_[a-z0-9_]+ literals in .go files
// (tests excluded — tests may fabricate names on purpose); catalogue names
// are matched only inside markdown table rows, so prose examples and
// runbook snippets don't count as documentation. Histogram rendering
// suffixes (_bucket, _sum, _count) are normalized away on both sides.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// metricRE matches a metric name. Trailing-underscore matches (from prose
// like "the tasti_ingest_* metrics") are discarded after the fact, since a
// registered name never ends with an underscore.
var metricRE = regexp.MustCompile(`tasti_[a-z0-9_]+`)

func main() {
	root := flag.String("root", ".", "repository root to scan")
	docs := flag.String("docs", "docs/OBSERVABILITY.md", "metric catalogue path, relative to -root")
	flag.Parse()

	inSource, err := sourceMetrics(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}
	inDocs, err := docMetrics(filepath.Join(*root, *docs))
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}

	undocumented := diff(inSource, inDocs)
	stale := diff(inDocs, inSource)
	for _, name := range undocumented {
		fmt.Fprintf(os.Stderr, "metricscheck: %s is emitted by source but missing from %s\n", name, *docs)
	}
	for _, name := range stale {
		fmt.Fprintf(os.Stderr, "metricscheck: %s is catalogued in %s but no source emits it\n", name, *docs)
	}
	if len(undocumented)+len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "metricscheck: %d undocumented, %d stale of %d source / %d catalogued metrics\n",
			len(undocumented), len(stale), len(inSource), len(inDocs))
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %d metrics, source and %s agree\n", len(inSource), *docs)
}

// sourceMetrics collects metric names from every non-test .go file under
// root, skipping this command's own directory (its examples and error
// strings are not emissions).
func sourceMetrics(root string) (map[string]bool, error) {
	names := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "metricscheck":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		collect(names, string(raw))
		return nil
	})
	return names, err
}

// docMetrics collects names from the catalogue's markdown table rows.
func docMetrics(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "|") {
			collect(names, line)
		}
	}
	return names, nil
}

func collect(into map[string]bool, text string) {
	for _, m := range metricRE.FindAllString(text, -1) {
		m = normalize(m)
		if m != "" {
			into[m] = true
		}
	}
}

// normalize drops glob-style prose matches and folds histogram rendering
// suffixes back to the registered family name.
func normalize(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	if strings.HasSuffix(name, "_") || name == "tasti" {
		return ""
	}
	return name
}

// diff returns the names in a but not in b, sorted.
func diff(a, b map[string]bool) []string {
	var out []string
	for name := range a {
		if !b[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
