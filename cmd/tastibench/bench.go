package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ingest"
	"repro/internal/labeler"
	"repro/internal/shard"
	"repro/tasti"
)

// The benchmark suite mirrors the shapes of internal/core's
// BenchmarkBuildParallel and BenchmarkPropagateParallel at workers=1, so a
// committed baseline (BENCH_10.json) stays comparable with `go test -bench`
// output while being runnable from the built binary, and adds the streaming
// write path (WAL append with fsync, index AppendRecords). cmd/benchgate
// compares two of these reports.

// BenchResult is one benchmark's steady-state cost.
type BenchResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// BenchReport is the JSON document written by -bench-json. Kernel names the
// distance-kernel implementation the run dispatched to (e.g. "avx2+fma"),
// so perf numbers are attributable to the code path that produced them —
// cmd/benchgate ignores it, humans comparing reports should not.
type BenchReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Kernel    string `json:"kernel"`
	// QuantBytesPerRecord is the quantized scan plane's resident bytes per
	// record (the embedding dim — 1 code byte per element), against the
	// 8x-larger float64 rows. Informational like Kernel; benchgate ignores it.
	QuantBytesPerRecord float64                `json:"quant_bytes_per_record"`
	Benchmarks          map[string]BenchResult `json:"benchmarks"`
}

// runBenchSuite runs the suite and writes the report to path atomically.
func runBenchSuite(path string) error {
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Kernel:     tasti.KernelName(),
		Benchmarks: map[string]BenchResult{},
	}

	buildDS, err := dataset.Generate("night-street", 6000, 1)
	if err != nil {
		return fmt.Errorf("generating build corpus: %w", err)
	}
	buildLab := labeler.NewOracle(buildDS, "oracle", labeler.MaskRCNNCost)
	rep.Benchmarks["build_parallel_w1"] = runBench(func(b *testing.B) {
		cfg := core.PretrainedConfig(600, 2)
		cfg.Parallelism = 1
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(cfg, buildDS, buildLab); err != nil {
				b.Fatal(err)
			}
		}
	})

	propDS, err := dataset.Generate("night-street", 20000, 1)
	if err != nil {
		return fmt.Errorf("generating propagation corpus: %w", err)
	}
	propLab := labeler.NewOracle(propDS, "oracle", labeler.MaskRCNNCost)
	ix, err := core.Build(core.PretrainedConfig(800, 2), propDS, propLab)
	if err != nil {
		return fmt.Errorf("building propagation index: %w", err)
	}
	ix.SetParallelism(1)
	score := core.CountScore("car")
	rep.Benchmarks["propagate_parallel_w1"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Propagate(score); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The candidate-generation scan itself, exact vs quantized, over the
	// same corpus and representative set: rebuild the min-k table at
	// workers=1. exact_scan_w1 streams the float64 rows through the batch
	// kernels; quant_scan_w1 streams the uint8 code plane and reranks bound
	// survivors exactly — identical output, 8x less memory traffic.
	reps8 := ix.Table.Reps
	k8 := ix.Table.K
	rep.Benchmarks["exact_scan_w1"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.BuildTablePar(ix.Embeddings, reps8, k8, 1)
		}
	})
	qcfg := core.PretrainedConfig(800, 2)
	qcfg.Quantize = true
	qix, err := core.Build(qcfg, propDS, propLab)
	if err != nil {
		return fmt.Errorf("building quantized propagation index: %w", err)
	}
	qix.SetParallelism(1)
	rep.QuantBytesPerRecord = float64(qix.Quant.Bytes()) / float64(qix.Quant.Rows())
	rep.Benchmarks["quant_scan_w1"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cluster.BuildTableQuantPar(qix.Embeddings, qix.Quant, reps8, k8, 1)
		}
	})
	rep.Benchmarks["propagate_quant_w1"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qix.Propagate(score); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The scatter-gather overhead of sharded serving at the same worker
	// count: 4 shards over the same corpus, bitwise-identical output.
	sharded, err := shard.Split(ix, 4)
	if err != nil {
		return fmt.Errorf("sharding propagation index: %w", err)
	}
	sharded.SetParallelism(1)
	rep.Benchmarks["propagate_sharded4_w1"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sharded.Propagate(score); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The streaming write path: one WAL frame per op, fsync included — this
	// is the floor under every /ingest ack.
	walDir, err := os.MkdirTemp("", "tasti-bench-wal-")
	if err != nil {
		return fmt.Errorf("creating bench WAL dir: %w", err)
	}
	defer os.RemoveAll(walDir) //nolint:errcheck // best-effort temp cleanup
	wal, err := ingest.OpenWAL(walDir, 0, ingest.WALOptions{})
	if err != nil {
		return fmt.Errorf("opening bench WAL: %w", err)
	}
	defer wal.Close() //nolint:errcheck // bench-only, temp dir removed anyway
	walFeats := make([][]float64, 16)
	walAnns := make([]dataset.Annotation, 16)
	for i := range walFeats {
		walFeats[i] = buildDS.Records[i].Features
		walAnns[i] = buildDS.Truth[i]
	}
	rep.Benchmarks["wal_append_fsync_b16"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := wal.Append(ingest.Batch{Base: wal.NextID(), Features: walFeats, Anns: walAnns}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// AppendRecords at workers=1: embed + min-k scan per appended record,
	// the apply-side cost of streaming ingest.
	appendIx, err := core.Build(core.PretrainedConfig(600, 2), buildDS, buildLab)
	if err != nil {
		return fmt.Errorf("building append index: %w", err)
	}
	appendIx.SetParallelism(1)
	rep.Benchmarks["append_records_w1_b16"] = runBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := appendIx.AppendRecords(walFeats); err != nil {
				b.Fatal(err)
			}
		}
	})

	return tasti.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}

func runBench(fn func(b *testing.B)) BenchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return BenchResult{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
