// Command tastibench regenerates the paper's tables and figures. Each
// experiment prints the rows the corresponding figure plots.
//
// Usage:
//
//	tastibench -exp fig4              # one experiment at the default scale
//	tastibench -exp all -scale small  # everything, fast
//	tastibench -list                  # show experiment IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/tasti"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig2..fig13, table1..table3) or 'all'")
		scale     = flag.String("scale", "default", "experiment scale: 'default' or 'small'")
		seed      = flag.Int64("seed", 0, "override the experiment seed (0 keeps the scale's default)")
		frames    = flag.Int("frames", 0, "override the video corpus size (0 keeps the scale's default)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		timings   = flag.Bool("timings", false, "print wall-clock time per experiment")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of text tables")
		mdOut     = flag.Bool("markdown", false, "emit markdown tables instead of text tables")
		replicas  = flag.Int("replicas", 1, "run the experiment under this many seeds and report means with bootstrap CIs")
		par       = flag.Int("parallelism", 0, "cap worker count for every pipeline phase via GOMAXPROCS (<= 0 uses all CPUs; results are identical at every value)")
		faultRate = flag.Float64("fault-rate", 0, "transient labeler fault rate for the 'faults' experiment (0 keeps its default)")
		traceOut  = flag.String("trace-out", "", "write a span-tree JSON trace (one span per experiment) here and print a phase-timing summary")
		benchJSON = flag.String("bench-json", "", "run the core build/propagation benchmark suite at workers=1, write the results as JSON here, and exit (see cmd/benchgate)")
	)
	flag.Parse()

	// Experiments build indexes with the default Parallelism (all CPUs), so
	// capping GOMAXPROCS bounds every parallel phase at once. Results are
	// unchanged: the chunk grids the pipeline reduces over depend only on
	// input sizes, never on the worker count.
	if *par > 0 {
		runtime.GOMAXPROCS(*par)
	}

	if *benchJSON != "" {
		if err := runBenchSuite(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "tastibench: bench suite: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchmark report written to %s\n", *benchJSON)
		return
	}

	if *list {
		desc := experiments.Describe()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, desc[id])
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "default":
		sc = experiments.DefaultScale()
	case "small":
		sc = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "tastibench: unknown scale %q (want 'default' or 'small')\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *frames != 0 {
		sc.VideoFrames = *frames
	}
	if *faultRate > 0 {
		sc.FaultRate = *faultRate
	}

	// A nil trace (no -trace-out) makes every span call below a no-op.
	var tr *tasti.Trace
	if *traceOut != "" {
		tr = tasti.NewTrace("tastibench")
		tr.Root().SetAttr("scale", *scale)
	}

	run := func(id string) error {
		sp := tr.Root().Child("exp/" + id)
		defer sp.End()
		sp.SetAttr("replicas", *replicas)
		start := time.Now()
		var sink io.Writer
		if !*jsonOut && !*mdOut {
			sink = os.Stdout
		}
		var rep *experiments.Report
		var err error
		if *replicas > 1 {
			seeds := make([]int64, *replicas)
			for i := range seeds {
				seeds[i] = sc.Seed + int64(i)
			}
			rep, err = experiments.RunReplicated(id, sc, seeds, sink)
		} else {
			rep, err = experiments.Run(id, sc, sink)
		}
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return err
			}
		}
		if *mdOut {
			if err := rep.WriteMarkdown(os.Stdout); err != nil {
				return err
			}
		}
		if *timings {
			fmt.Printf("[%s took %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	if *exp == "all" {
		for _, id := range experiments.IDs() {
			if err := run(id); err != nil {
				fmt.Fprintf(os.Stderr, "tastibench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	} else if err := run(*exp); err != nil {
		fmt.Fprintf(os.Stderr, "tastibench: %v\n", err)
		os.Exit(1)
	}
	if err := writeTrace(tr, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "tastibench: writing trace: %v\n", err)
		os.Exit(1)
	}
}

// writeTrace finishes the trace, dumps the span tree as JSON to path, and
// prints the phase-timing summary. A nil trace is a no-op.
func writeTrace(tr *tasti.Trace, path string) error {
	if tr == nil {
		return nil
	}
	tr.Finish()
	if err := tasti.WriteFileAtomic(path, tr.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("\ntrace written to %s\n%s", path, tr.Summary())
	return nil
}
