package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/dataset"
)

// firehoseRecord mirrors tastiserve's POST /ingest record schema.
type firehoseRecord struct {
	Features   []float64                  `json:"features"`
	Annotation dataset.AnnotationEnvelope `json:"annotation"`
}

type firehoseRequest struct {
	Records []firehoseRecord `json:"records"`
}

// firehose streams generated records into a tastiserve /ingest endpoint at a
// paced rate for the given duration and reports sustained throughput and ack
// latency. Every 200 is a durability receipt (the server fsynced the batch's
// WAL frame before answering); 429s are the server's backpressure and are
// counted, waited out, and retried with the next batch.
func firehose(serverURL, name string, size int, seed int64, rate float64, dur time.Duration, batch int, tenant string) error {
	if rate <= 0 || batch <= 0 || dur <= 0 {
		return fmt.Errorf("firehose needs positive -rate, -batch, and -duration")
	}
	src, err := dataset.Generate(name, size, seed)
	if err != nil {
		return err
	}
	// Pre-encode nothing; wrap per batch so records cycle when the run
	// outlasts the corpus.
	envs := make([]dataset.AnnotationEnvelope, src.Len())
	for i, ann := range src.Truth {
		if envs[i], err = dataset.EnvelopeOf(ann); err != nil {
			return err
		}
	}

	interval := time.Duration(float64(batch) / rate * float64(time.Second))
	client := &http.Client{Timeout: 30 * time.Second}
	var (
		acked, rejected, failed int
		lats                    []time.Duration
		next                    int
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for time.Now().Before(deadline) {
		recs := make([]firehoseRecord, batch)
		for i := range recs {
			recs[i] = firehoseRecord{Features: src.Records[next].Features, Annotation: envs[next]}
			next = (next + 1) % src.Len()
		}
		body, err := json.Marshal(firehoseRequest{Records: recs})
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, serverURL+"/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tasti-Tenant", tenant)
		}
		sent := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("firehose: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			acked += batch
			lats = append(lats, time.Since(sent))
		case http.StatusTooManyRequests:
			rejected += batch
			time.Sleep(time.Second)
		case http.StatusServiceUnavailable:
			// Index still building or WAL replaying; wait it out.
			time.Sleep(time.Second)
		default:
			failed++
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			fmt.Printf("  %s: %s\n", resp.Status, bytes.TrimSpace(msg))
		}
		if err := resp.Body.Close(); err != nil {
			return err
		}
		if sleep := interval - time.Since(sent); sleep > 0 {
			time.Sleep(sleep)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("== firehose %s -> %s ==\n", name, serverURL)
	fmt.Printf("  acked     %d records in %.1fs (%.0f rec/s sustained)\n",
		acked, elapsed.Seconds(), float64(acked)/elapsed.Seconds())
	fmt.Printf("  rejected  %d records (429 backpressure)\n", rejected)
	if failed > 0 {
		fmt.Printf("  failed    %d batches\n", failed)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		fmt.Printf("  ack latency p50 %.2fms  p99 %.2fms  max %.2fms\n",
			ms(lats[len(lats)/2]), ms(lats[len(lats)*99/100]), ms(lats[len(lats)-1]))
	}
	if failed > 0 {
		return fmt.Errorf("firehose: %d batches failed", failed)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
