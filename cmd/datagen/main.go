// Command datagen generates the synthetic corpora and prints summary
// statistics: annotation histograms, rare-event prevalence, and feature
// dimensions. Use it to inspect what the evaluation actually runs on.
//
// Usage:
//
//	datagen -dataset night-street -size 20000
//	datagen -all -size 4000
//
// -firehose streams generated records into a running tastiserve's
// POST /ingest endpoint instead of summarizing, pacing batches at -rate
// records per second for -duration and reporting sustained throughput plus
// ack-latency percentiles — each ack is a durability receipt, fsynced into
// the server's WAL before the response:
//
//	tastiserve -dataset night-street -size 10000 -wal-dir /var/lib/tasti/wal &
//	datagen -dataset night-street -size 4000 -seed 99 \
//	        -firehose http://localhost:8080 -rate 500 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/snapshot"
)

func main() {
	var (
		name = flag.String("dataset", "night-street", "corpus to generate")
		size = flag.Int("size", 10000, "corpus size")
		seed = flag.Int64("seed", 1, "generation seed")
		all  = flag.Bool("all", false, "summarize every corpus")
		out  = flag.String("out", "", "save the generated corpus to this file")
		in   = flag.String("in", "", "load and summarize a corpus saved with -out instead of generating")

		fire     = flag.String("firehose", "", "stream generated records into this tastiserve base URL's /ingest endpoint instead of summarizing")
		rate     = flag.Float64("rate", 200, "firehose target records per second")
		duration = flag.Duration("duration", 10*time.Second, "firehose run length")
		batch    = flag.Int("batch", 16, "firehose records per request")
		tenant   = flag.String("tenant", "", "firehose X-Tasti-Tenant header (empty uses the server default)")
	)
	flag.Parse()

	if *fire != "" {
		if err := firehose(*fire, *name, *size, *seed, *rate, *duration, *batch, *tenant); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *in != "" {
		if err := summarizeFile(*in); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	names := []string{*name}
	if *all {
		names = dataset.Names()
	}
	for _, n := range names {
		if err := summarize(n, *size, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
	}
}

// summarizeFile loads a saved corpus and prints its summary.
func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := dataset.Load(f)
	if err != nil {
		return err
	}
	describe(ds)
	return nil
}

func summarize(name string, size int, seed int64, out string) error {
	ds, err := dataset.Generate(name, size, seed)
	if err != nil {
		return err
	}
	describe(ds)
	if out != "" {
		if err := snapshot.WriteFile(out, ds.Save); err != nil {
			return err
		}
		fmt.Printf("saved to %s\n", out)
	}
	return nil
}

// describe prints a corpus summary.
func describe(ds *dataset.Dataset) {
	fmt.Printf("== %s: %d records, %d feature dims ==\n", ds.Name, ds.Len(), ds.FeatureDim())
	switch ds.Truth[0].(type) {
	case dataset.VideoAnnotation:
		summarizeVideo(ds)
	case dataset.TextAnnotation:
		summarizeText(ds)
	case dataset.SpeechAnnotation:
		summarizeSpeech(ds)
	}
	fmt.Println()
}

func summarizeVideo(ds *dataset.Dataset) {
	classSet := map[string]bool{}
	for _, ann := range ds.Truth {
		for _, b := range ann.(dataset.VideoAnnotation).Boxes {
			classSet[b.Class] = true
		}
	}
	classes := make([]string, 0, len(classSet))
	for class := range classSet {
		classes = append(classes, class)
	}
	sort.Strings(classes)

	perClass := map[string]map[int]int{}
	for _, class := range classes {
		hist := map[int]int{}
		for _, ann := range ds.Truth {
			hist[ann.(dataset.VideoAnnotation).Count(class)]++
		}
		perClass[class] = hist
	}
	for _, class := range classes {
		hist := perClass[class]
		maxCount := 0
		for c := range hist {
			if c > maxCount {
				maxCount = c
			}
		}
		fmt.Printf("  %s counts:", class)
		for c := 0; c <= maxCount; c++ {
			if hist[c] > 0 {
				fmt.Printf(" %d:%d", c, hist[c])
			}
		}
		fmt.Println()
	}
}

func summarizeText(ds *dataset.Dataset) {
	ops := map[string]int{}
	preds := map[int]int{}
	for _, ann := range ds.Truth {
		ta := ann.(dataset.TextAnnotation)
		ops[ta.Operator]++
		preds[ta.NumPredicates]++
	}
	keys := make([]string, 0, len(ops))
	for op := range ops {
		keys = append(keys, op)
	}
	sort.Strings(keys)
	fmt.Print("  operators:")
	for _, op := range keys {
		fmt.Printf(" %s:%d", op, ops[op])
	}
	fmt.Print("\n  predicates:")
	for p := 0; p <= 4; p++ {
		fmt.Printf(" %d:%d", p, preds[p])
	}
	fmt.Println()
}

func summarizeSpeech(ds *dataset.Dataset) {
	gender := map[string]int{}
	decades := map[int]int{}
	for _, ann := range ds.Truth {
		sa := ann.(dataset.SpeechAnnotation)
		gender[sa.Gender]++
		decades[sa.AgeBucket()]++
	}
	fmt.Printf("  gender: male:%d female:%d\n", gender["male"], gender["female"])
	fmt.Print("  age decades:")
	buckets := make([]int, 0, len(decades))
	for b := range decades {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Printf(" %d0s:%d", b, decades[b])
	}
	fmt.Println()
}
