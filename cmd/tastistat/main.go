// Command tastistat renders a one-screen operator view of a running
// tastiserve: it polls GET /admin/status and GET /metrics and condenses
// build identity, index health, query spend, ingest lag, and tracing state
// into a few fixed lines — the numbers an operator wants before deciding
// whether to read traces, scrape dashboards, or go back to sleep.
//
// Usage:
//
//	tastistat -addr http://localhost:8080           # one snapshot
//	tastistat -addr http://localhost:8080 -watch 2s # repaint every 2s
//
// The view degrades gracefully: while the server is still building its
// index the status line says so and the index/query sections are omitted;
// sections for disabled subsystems (no WAL, tracing off) are likewise
// dropped rather than rendered as zeros.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/tasti"
)

// statusDoc mirrors the GET /admin/status payload.
type statusDoc struct {
	Status          string             `json:"status"`
	Error           string             `json:"error"`
	Dataset         string             `json:"dataset"`
	Version         string             `json:"version"`
	Go              string             `json:"go"`
	Kernel          string             `json:"kernel"`
	UptimeSeconds   float64            `json:"uptime_seconds"`
	TraceSampleRate float64            `json:"trace_sample_rate"`
	TracesRetained  int                `json:"traces_retained"`
	TraceRingCap    int                `json:"trace_ring_cap"`
	BreakerState    string             `json:"breaker_state"`
	Ledger          tasti.LedgerTotals `json:"ledger"`
	LabelStore      *labelStoreDoc     `json:"label_store"`
	Health          *healthDoc         `json:"health"`
}

type labelStoreDoc struct {
	Entries         int                     `json:"entries"`
	Dirty           int64                   `json:"dirty"`
	GlobalBudget    int64                   `json:"global_budget"`
	TenantBudget    int64                   `json:"tenant_budget"`
	GlobalRemaining int64                   `json:"global_remaining"`
	Tenants         map[string]tenantBudget `json:"tenants"`
}

type tenantBudget struct {
	Spent     int64 `json:"spent"`
	Remaining int64 `json:"remaining"`
}

type healthDoc struct {
	Records    int        `json:"records"`
	Reps       int        `json:"representatives"`
	Shards     int        `json:"shards"`
	RecordSkew float64    `json:"record_skew"`
	RepSkew    float64    `json:"rep_skew"`
	RadiusP50  float64    `json:"radius_p50"`
	RadiusP90  float64    `json:"radius_p90"`
	RadiusP99  float64    `json:"radius_p99"`
	Memory     *memoryDoc `json:"memory"`
	Drift      *driftDoc  `json:"drift"`
	WAL        *walLagDoc `json:"wal"`
}

type memoryDoc struct {
	Quantized        bool    `json:"quantized"`
	FloatBytes       int64   `json:"embedding_float_bytes"`
	QuantBytes       int64   `json:"embedding_quant_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	RerankRate       float64 `json:"quant_rerank_rate"`
}

type driftDoc struct {
	Ratio     float64 `json:"ratio"`
	Baseline  float64 `json:"baseline"`
	Triggered bool    `json:"triggered"`
}

type walLagDoc struct {
	Segments   int   `json:"segments"`
	Bytes      int64 `json:"bytes"`
	LagRecords int   `json:"lag_records"`
	QueueDepth int   `json:"queue_depth"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "tastiserve base URL")
	watch := flag.Duration("watch", 0, "repaint at this interval (0 renders once and exits)")
	flag.Parse()

	for {
		out, err := snapshot(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tastistat: %v\n", err)
			if *watch == 0 {
				os.Exit(1)
			}
		} else {
			if *watch > 0 {
				fmt.Print("\033[H\033[2J") // home + clear: repaint in place
			}
			fmt.Print(out)
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// snapshot fetches both endpoints and renders the view.
func snapshot(addr string) (string, error) {
	var st statusDoc
	resp, err := http.Get(addr + "/admin/status")
	if err != nil {
		return "", err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", fmt.Errorf("decoding /admin/status: %w", err)
	}
	resp, err = http.Get(addr + "/metrics")
	if err != nil {
		return "", err
	}
	fams, err := tasti.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", fmt.Errorf("parsing /metrics: %w", err)
	}
	return render(&st, fams), nil
}

// render condenses one poll into the fixed operator view. Pure — unit
// tests feed it fabricated inputs.
func render(st *statusDoc, fams map[string]*tasti.PromFamily) string {
	var b strings.Builder
	up := time.Duration(st.UptimeSeconds * float64(time.Second)).Truncate(time.Second)
	fmt.Fprintf(&b, "tastiserve %s · %s · v%s %s · kernel %s · up %s\n",
		st.Dataset, st.Status, st.Version, st.Go, st.Kernel, up)
	if st.Error != "" {
		fmt.Fprintf(&b, "error   %s\n", st.Error)
	}
	if h := st.Health; h != nil {
		fmt.Fprintf(&b, "index   %d records · %d reps · %d shard(s) · skew rec %.2f rep %.2f · radius p50/p90/p99 %.3g/%.3g/%.3g\n",
			h.Records, h.Reps, h.Shards, h.RecordSkew, h.RepSkew, h.RadiusP50, h.RadiusP90, h.RadiusP99)
		if m := h.Memory; m != nil {
			fmt.Fprintf(&b, "memory  embeddings %s float", sizeOf(m.FloatBytes))
			if m.Quantized {
				fmt.Fprintf(&b, " + %s quant codes (%.1fx smaller scans) · rerank rate %.1f%%",
					sizeOf(m.QuantBytes), m.CompressionRatio, m.RerankRate*100)
			} else {
				b.WriteString(" · no quantized plane (-quantize builds one)")
			}
			b.WriteByte('\n')
		}
	}
	if st.Status == "ready" {
		runs := seriesByLabel(fams, "tasti_query_runs_total", "type")
		fmt.Fprintf(&b, "queries agg %.0f sel %.0f lim %.0f · labels %d (hits %d) · 5xx %.0f · in-flight %.0f · breaker %s\n",
			runs["aggregate"], runs["select"], runs["limit"],
			st.Ledger.Labels, st.Ledger.Hits,
			sumFamily(fams, "tasti_http_errors_total"),
			sumFamily(fams, "tasti_http_in_flight"),
			st.BreakerState)
		fmt.Fprintf(&b, "ledger  %d requests · %d records touched · wall %s\n",
			st.Ledger.Requests, st.Ledger.Records,
			time.Duration(st.Ledger.WallNS).Truncate(time.Microsecond))
	}
	if line := labelLine(st.LabelStore, fams); line != "" {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if h := st.Health; h != nil && h.WAL != nil {
		fmt.Fprintf(&b, "ingest  acked %.0f · queue %d · wal lag %d rec / %d seg / %s",
			sumFamily(fams, "tasti_ingest_acked_total"),
			h.WAL.QueueDepth, h.WAL.LagRecords, h.WAL.Segments, sizeOf(h.WAL.Bytes))
		if h.Drift != nil {
			fmt.Fprintf(&b, " · drift %.2fx of %.3g", h.Drift.Ratio, h.Drift.Baseline)
			if h.Drift.Triggered {
				b.WriteString(" TRIGGERED")
			}
		}
		b.WriteByte('\n')
	}
	if st.TraceSampleRate > 0 {
		fmt.Fprintf(&b, "traces  %d/%d retained · sampling %.1f%%\n",
			st.TracesRetained, st.TraceRingCap, st.TraceSampleRate*100)
	}
	return b.String()
}

// labelLine renders the cost-control line: label-store residency and hit
// rate, coalesced oracle calls, and the remaining budget per scope. Empty
// when the store is idle and no budget is configured — a server without a
// cost-control plane doesn't earn a line of zeros.
func labelLine(ls *labelStoreDoc, fams map[string]*tasti.PromFamily) string {
	if ls == nil {
		return ""
	}
	hits := sumFamily(fams, "tasti_labelstore_hits_total")
	misses := sumFamily(fams, "tasti_labelstore_misses_total")
	if ls.Entries == 0 && hits+misses == 0 && ls.GlobalBudget <= 0 && ls.TenantBudget <= 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "labels  %d stored", ls.Entries)
	if ls.Dirty > 0 {
		fmt.Fprintf(&b, " (%d dirty)", ls.Dirty)
	}
	if hits+misses > 0 {
		fmt.Fprintf(&b, " · hit rate %.1f%% (%.0f/%.0f)", 100*hits/(hits+misses), hits, hits+misses)
	}
	if c := sumFamily(fams, "tasti_labelstore_coalesced_total"); c > 0 {
		fmt.Fprintf(&b, " · coalesced %.0f", c)
	}
	if ls.GlobalBudget > 0 {
		fmt.Fprintf(&b, " · budget %d/%d left", ls.GlobalRemaining, ls.GlobalBudget)
	}
	if ls.TenantBudget > 0 && len(ls.Tenants) > 0 {
		names := make([]string, 0, len(ls.Tenants))
		for name := range ls.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s %d/%d", name, ls.Tenants[name].Remaining, ls.TenantBudget))
		}
		fmt.Fprintf(&b, " · tenants %s", strings.Join(parts, " "))
	}
	return b.String()
}

// sumFamily sums every sample of a family (all label sets), skipping the
// _bucket/_sum rows of histograms so a histogram family sums to its count.
func sumFamily(fams map[string]*tasti.PromFamily, name string) float64 {
	fam := fams[name]
	if fam == nil {
		return 0
	}
	var total float64
	for _, s := range fam.Samples {
		if strings.HasSuffix(s.Name, "_bucket") || strings.HasSuffix(s.Name, "_sum") {
			continue
		}
		total += s.Value
	}
	return total
}

// seriesByLabel indexes a family's samples by one label's value.
func seriesByLabel(fams map[string]*tasti.PromFamily, name, label string) map[string]float64 {
	out := make(map[string]float64)
	fam := fams[name]
	if fam == nil {
		return out
	}
	for _, s := range fam.Samples {
		if v, ok := s.Labels[label]; ok {
			out[v] += s.Value
		}
	}
	return out
}

// sizeOf renders bytes with a binary unit, one decimal.
func sizeOf(n int64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	v := float64(n)
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0fB", v)
	}
	return fmt.Sprintf("%.1f%s", v, units[i])
}
