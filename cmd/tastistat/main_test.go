package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeStatus is a ready server's /admin/status payload with every optional
// section present: health, drift, WAL, tracing.
const fakeStatus = `{
  "status": "ready",
  "dataset": "night-street",
  "version": "0.8.0",
  "go": "go1.22.0",
  "kernel": "avx2",
  "uptime_seconds": 128.4,
  "trace_sample_rate": 0.25,
  "traces_retained": 12,
  "trace_ring_cap": 256,
  "breaker_state": "closed",
  "ledger": {
    "requests": 9,
    "labels": 412,
    "records": 5400,
    "shards": 18,
    "hits": 37,
    "wall_ns": 2500000
  },
  "label_store": {
    "entries": 680,
    "dirty": 14,
    "global_budget": 1000,
    "tenant_budget": 200,
    "global_remaining": 588,
    "tenants": {
      "acme": {"spent": 180, "remaining": 20},
      "beta": {"spent": 200, "remaining": 0}
    }
  },
  "health": {
    "collected_at": "2026-08-08T12:00:00Z",
    "records": 916,
    "representatives": 150,
    "shards": 2,
    "record_skew": 1.01,
    "rep_skew": 1.04,
    "radius_p50": 0.031,
    "radius_p90": 0.084,
    "radius_p99": 0.141,
    "drift": {"ratio": 1.62, "baseline": 0.03, "triggered": true},
    "wal": {"segments": 1, "bytes": 2048, "first_record": 900, "next_record": 916, "lag_records": 16, "queue_depth": 3}
  }
}`

const fakeMetrics = `# HELP tasti_query_runs_total Queries served, by type.
# TYPE tasti_query_runs_total counter
tasti_query_runs_total{type="aggregate"} 5
tasti_query_runs_total{type="select"} 3
tasti_query_runs_total{type="limit"} 1
# TYPE tasti_http_errors_total counter
tasti_http_errors_total{route="/query/limit"} 2
# TYPE tasti_http_in_flight gauge
tasti_http_in_flight 1
# TYPE tasti_ingest_acked_total counter
tasti_ingest_acked_total 16
# TYPE tasti_labelstore_hits_total counter
tasti_labelstore_hits_total 1530
# TYPE tasti_labelstore_misses_total counter
tasti_labelstore_misses_total 412
# TYPE tasti_labelstore_coalesced_total counter
tasti_labelstore_coalesced_total 24
`

func statServer(t *testing.T, status, metrics string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(status))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(metrics))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestSnapshotReadyView drives the full fetch+render path against fabricated
// endpoints and checks each line of the operator view carries the right
// numbers in the right section.
func TestSnapshotReadyView(t *testing.T) {
	ts := statServer(t, fakeStatus, fakeMetrics)
	out, err := snapshot(ts.URL)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("want 7 lines, got %d:\n%s", len(lines), out)
	}
	wantIn := map[int][]string{
		0: {"night-street", "ready", "v0.8.0 go1.22.0", "kernel avx2", "up 2m8s"},
		1: {"916 records", "150 reps", "2 shard(s)", "skew rec 1.01 rep 1.04", "0.031/0.084/0.141"},
		2: {"agg 5 sel 3 lim 1", "labels 412 (hits 37)", "5xx 2", "in-flight 1", "breaker closed"},
		3: {"ledger  9 requests", "5400 records touched", "wall 2.5ms"},
		4: {"labels  680 stored (14 dirty)", "hit rate 78.8% (1530/1942)", "coalesced 24", "budget 588/1000 left", "tenants acme 20/200 beta 0/200"},
		5: {"acked 16", "queue 3", "wal lag 16 rec / 1 seg / 2.0KiB", "drift 1.62x of 0.03", "TRIGGERED"},
		6: {"traces  12/256 retained", "sampling 25.0%"},
	}
	for i, wants := range wantIn {
		for _, want := range wants {
			if !strings.Contains(lines[i], want) {
				t.Errorf("line %d missing %q: %s", i, want, lines[i])
			}
		}
	}
}

// TestSnapshotBuildingView: before the index is ready the status payload has
// no health or breaker fields; the view must degrade to the identity line
// and tracing line only, with no zero-filled sections.
func TestSnapshotBuildingView(t *testing.T) {
	status := `{"status":"building","dataset":"taipei","version":"0.8.0","go":"go1.22.0","kernel":"scalar","uptime_seconds":2,"trace_sample_rate":0.01,"traces_retained":0,"trace_ring_cap":256,"ledger":{"requests":0,"labels":0,"records":0,"shards":0,"hits":0,"wall_ns":0}}`
	ts := statServer(t, status, "")
	out, err := snapshot(ts.URL)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if !strings.Contains(out, "taipei · building") {
		t.Errorf("missing building status: %s", out)
	}
	for _, absent := range []string{"index ", "queries", "ledger", "ingest"} {
		if strings.Contains(out, absent) {
			t.Errorf("building view should omit %q section:\n%s", absent, out)
		}
	}
}

// TestSnapshotBuildFailedView surfaces the build error on its own line.
func TestSnapshotBuildFailedView(t *testing.T) {
	status := `{"status":"build failed","error":"labeler: permanent fault","dataset":"taipei","version":"0.8.0","go":"go1.22.0","kernel":"scalar","uptime_seconds":9,"trace_sample_rate":0,"traces_retained":0,"trace_ring_cap":256,"ledger":{"requests":0,"labels":0,"records":0,"shards":0,"hits":0,"wall_ns":0}}`
	ts := statServer(t, status, "")
	out, err := snapshot(ts.URL)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if !strings.Contains(out, "error   labeler: permanent fault") {
		t.Errorf("missing error line:\n%s", out)
	}
	// Tracing disabled (rate 0) drops the traces line.
	if strings.Contains(out, "traces") {
		t.Errorf("rate-0 view should omit traces line:\n%s", out)
	}
}

func TestSizeOf(t *testing.T) {
	cases := map[int64]string{
		0:           "0B",
		512:         "512B",
		2048:        "2.0KiB",
		1536 * 1024: "1.5MiB",
	}
	for in, want := range cases {
		if got := sizeOf(in); got != want {
			t.Errorf("sizeOf(%d) = %q, want %q", in, got, want)
		}
	}
}
