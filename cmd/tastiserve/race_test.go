package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServeQueriesConcurrentWithCracking is the regression test for the
// index's concurrency contract: Index.Crack/CrackAll mutate Annotations and
// the distance table with no internal synchronization, so the server must
// serialize cracking against every query. Run under -race (CI does), this
// fails if the coarse server mutex ever stops covering a handler that
// touches the index.
func TestServeQueriesConcurrentWithCracking(t *testing.T) {
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 400, train: 30, reps: 40, seed: 1, parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	post := func(path string, body map[string]interface{}) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}

	const clients = 4
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*3)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Limit queries with crack=true mutate the index while the
				// other clients propagate and read index stats. Target the
				// rare multi-car bursts (count >= 3): finding them forces the
				// scan deep past the already-annotated representatives, so
				// non-representative records get labeled and cracked in. A
				// common predicate could be satisfied entirely by top-ranked
				// representatives, cracking nothing.
				if err := post("/query/limit", map[string]interface{}{
					"class": "car", "count": 3, "k": 2, "crack": true,
				}); err != nil {
					errs <- err
				}
				if err := post("/query/aggregate", map[string]interface{}{
					"class": "car", "err": 0.5,
				}); err != nil {
					errs <- err
				}
				resp, err := http.Get(ts.URL + "/index")
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cracking must have grown the representative set; the table must still
	// satisfy its invariants after concurrent traffic.
	if err := srv.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.release()
	ix := srv.index.Load()
	if got := ix.RepCount(); got <= 40 {
		t.Errorf("expected cracking to add representatives, still %d", got)
	}
	for i := 0; i < ix.NumShards(); i++ {
		if err := ix.Shard(i).Table.Validate(); err != nil {
			t.Errorf("shard %d table invariants violated after concurrent serve+crack: %v", i, err)
		}
	}
}
