package main

// Streaming ingest wiring: POST /ingest appends records through a crash-safe
// WAL (internal/ingest), replayed into the index at boot; drift past the
// build-time baseline triggers a background re-crack that hot-swaps a cloned
// index; POST /admin/refresh forces one and folds the result into the
// snapshot, truncating covered WAL segments. See docs/RELIABILITY.md for the
// durability contract and the crashed-ingester runbook.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"repro/tasti"
)

// ingestDatasetFile is the extended corpus's durable home inside -wal-dir:
// the ground truth for appended records, saved by the refresh path BEFORE the
// index snapshot so a crash between the two leaves the dataset at least as
// new as the index it must explain.
const ingestDatasetFile = "dataset.snap"

func (s *server) ingestDatasetPath() string {
	return filepath.Join(s.opts.walDir, ingestDatasetFile)
}

// tenantLimiter caps how many records each tenant may have pending in the
// ingest pipeline, so one firehose cannot starve the shared queue.
type tenantLimiter struct {
	mu      sync.Mutex
	cap     int
	pending map[string]int
}

func (l *tenantLimiter) reserve(tenant string, n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending[tenant]+n > l.cap {
		return false
	}
	if l.pending == nil {
		l.pending = make(map[string]int)
	}
	l.pending[tenant] += n
	return true
}

func (l *tenantLimiter) release(tenant string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pending[tenant] -= n; l.pending[tenant] <= 0 {
		delete(l.pending, tenant)
	}
}

// restoreIngestDataset loads the extended corpus saved by the refresh path,
// falling back to the freshly generated base corpus when the file is absent
// or does not describe this server's configuration. Called before snapshot
// validation, so an index snapshot covering appended records is accepted.
func (s *server) restoreIngestDataset(base *tasti.Dataset) *tasti.Dataset {
	path := s.ingestDatasetPath()
	var saved *tasti.Dataset
	err := tasti.ReadSnapshotFile(path, func(r io.Reader) error {
		var lerr error
		saved, lerr = tasti.LoadDataset(r)
		return lerr
	})
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.log.Warn("saved ingest dataset unusable; starting from the generated corpus",
				"path", path, "err", err.Error())
		}
		return base
	}
	if saved.Name != base.Name || saved.Len() < base.Len() || saved.FeatureDim() != base.FeatureDim() {
		s.log.Warn("saved ingest dataset does not extend the configured corpus; ignoring it",
			"path", path, "saved_name", saved.Name, "saved_records", saved.Len(),
			"base_records", base.Len())
		return base
	}
	s.log.Info("ingest dataset restored", "path", path,
		"records", saved.Len(), "appended", saved.Len()-base.Len())
	return saved
}

// initIngest replays the WAL into the freshly loaded (or built) index,
// extends the dataset with replayed annotations, and starts the WAL, drift
// detector, refresher, and ingester. Runs inside buildIndex before the ready
// flag flips, so every handler — including /ingest itself — answers 503 for
// the whole replay.
func (s *server) initIngest(index *tasti.ShardedIndex, ds *tasti.Dataset) error {
	opts := s.opts
	if index.Embedder() == nil {
		return fmt.Errorf("streaming ingest needs an index with an embedding model; the snapshot predates embedder persistence — delete %s to rebuild", opts.snapshotPath)
	}
	if ds.Len() < index.NumRecords() {
		return fmt.Errorf("corrupt ingest state: index covers %d records but the dataset has %d", index.NumRecords(), ds.Len())
	}

	from := index.NumRecords()
	start := time.Now()
	st, err := tasti.ReplayWAL(opts.walDir, from, func(b tasti.IngestBatch) error {
		for i := range b.Features {
			if id := b.Base + i; id == ds.Len() {
				ds.Records = append(ds.Records, tasti.Record{ID: id, Features: slices.Clone(b.Features[i])})
				ds.Truth = append(ds.Truth, b.Anns[i])
			}
		}
		_, aerr := index.AppendRecords(b.Features)
		return aerr
	})
	if err != nil {
		return fmt.Errorf("replaying WAL %s: %w", opts.walDir, err)
	}
	s.reg.Gauge("tasti_wal_replay_records").Set(float64(st.Records))
	s.reg.Gauge("tasti_wal_replay_skipped").Set(float64(st.Skipped))
	s.reg.Gauge("tasti_wal_replay_segments").Set(float64(st.Segments))
	if st.Truncated {
		// Not fatal by design: the dropped frames were never acked (or a
		// later epoch's segment already continued past the tear).
		s.reg.Counter("tasti_wal_replay_truncations_total").Inc()
		s.log.Warn("WAL replay dropped a torn or corrupt tail",
			"segment", st.TruncatedSegment, "err", st.Err.Error())
	}
	if st.Records > 0 || st.Skipped > 0 {
		s.log.Info("WAL replayed",
			"records", st.Records, "skipped", st.Skipped, "segments", st.Segments,
			"elapsed_ms", float64(time.Since(start).Microseconds())/1000)
	}
	// Records in the saved dataset but covered by neither the index snapshot
	// nor the WAL (an operator deleted segments or the index snapshot): trim
	// the tail so IDs the WAL will assign next stay contiguous.
	if ds.Len() > index.NumRecords() {
		s.log.Warn("saved dataset extends past WAL coverage; trimming the unreachable tail",
			"dataset_records", ds.Len(), "index_records", index.NumRecords())
		ds.Records = ds.Records[:index.NumRecords()]
		ds.Truth = ds.Truth[:index.NumRecords()]
	}

	wal, err := tasti.OpenWAL(opts.walDir, index.NumRecords(), tasti.WALOptions{
		SegmentBytes: opts.walSegmentBytes,
		Telemetry:    s.reg,
	})
	if err != nil {
		return err
	}
	window, threshold := opts.driftParams()
	drift := tasti.NewDriftDetector(window, threshold, s.reg)
	drift.Reset(index.MeanNearestDistance())

	s.wal = wal
	s.drift = drift
	s.tenants.cap = opts.tenantPendingCap()
	s.refresher, err = tasti.NewRefresher(tasti.RefreshConfig{
		Index:   func() *tasti.ShardedIndex { return s.index.Load() },
		Acquire: s.acquire,
		Release: s.release,
		Swap: func(x *tasti.ShardedIndex) {
			x.SetTelemetry(s.reg)
			s.index.Store(x)
		},
		Label:     s.labelForRefresh,
		Drift:     drift,
		Budget:    opts.refreshBudget,
		Since:     opts.size,
		Telemetry: s.reg,
	})
	if err != nil {
		wal.Close() //nolint:errcheck // already failing
		return err
	}
	s.ingester, err = tasti.NewIngester(tasti.IngestConfig{
		WAL:             wal,
		Apply:           s.applyIngest,
		QueueDepth:      opts.ingestQueue,
		MaxBatchRecords: opts.ingestBatch,
		Telemetry:       s.reg,
	})
	if err != nil {
		wal.Close() //nolint:errcheck // already failing
		return err
	}
	s.ingester.Start()
	s.log.Info("streaming ingest enabled",
		"wal_dir", opts.walDir,
		"next_record", index.NumRecords(),
		"drift_window", window,
		"drift_threshold", threshold,
		"auto_refresh", opts.refreshAuto)
	return nil
}

// closeIngest drains queued submissions through the writer loop and seals
// the WAL. Call after the HTTP listener has stopped accepting requests.
func (s *server) closeIngest() {
	if s.ingester == nil {
		return
	}
	if err := s.ingester.Close(); err != nil {
		s.log.Error("closing ingest pipeline", "err", err.Error())
	}
}

// applyIngest is the Ingester's visibility callback: the batch is already
// durable (fsynced and acked), this makes it queryable. It serializes with
// every query and refresh through the index semaphore, extends the dataset's
// ground truth, appends to the serving index, feeds the drift detector, and
// may kick off a background refresh.
func (s *server) applyIngest(b tasti.IngestBatch) error {
	if err := s.acquire(context.Background()); err != nil {
		return err
	}
	ix := s.index.Load()
	n := ix.NumRecords()
	if b.Base > n {
		s.release()
		return fmt.Errorf("ingest batch starts at record %d but the index covers %d", b.Base, n)
	}
	for i := range b.Features {
		if id := b.Base + i; id == s.ds.Len() {
			s.ds.Records = append(s.ds.Records, tasti.Record{ID: id, Features: slices.Clone(b.Features[i])})
			s.ds.Truth = append(s.ds.Truth, b.Anns[i])
		}
	}
	s.corpusLen.Store(int64(s.ds.Len()))
	if lo := n - b.Base; lo < len(b.Features) {
		ids, err := ix.AppendRecords(b.Features[lo:])
		if err != nil {
			s.release()
			return err
		}
		for _, id := range ids {
			s.drift.Observe(ix.NearestDistance(id))
		}
	}
	s.release()
	s.maybeRefresh()
	return nil
}

// maybeRefresh starts a drift-triggered background refresh when enabled. The
// refresher's own single-flight guard makes the racy Triggered/Running reads
// harmless — at most one refresh runs, extras bail out.
func (s *server) maybeRefresh() {
	if !s.opts.refreshAuto || s.refresher.Running() || !s.drift.Triggered() {
		return
	}
	go func() {
		st, err := s.refresher.Refresh(context.Background())
		if err != nil {
			if !errors.Is(err, tasti.ErrRefreshInProgress) {
				s.log.Error("drift-triggered refresh failed; previous index keeps serving", "err", err.Error())
			}
			return
		}
		s.log.Info("drift-triggered refresh complete",
			"cracked", st.Cracked, "catch_up", st.CatchUp, "baseline", st.Baseline,
			"elapsed_ms", float64(st.Elapsed.Microseconds())/1000)
		if err := s.persistIngestState(context.Background()); err != nil {
			s.log.Warn("persisting refreshed state failed; WAL retains full coverage", "err", err.Error())
		}
	}()
}

// persistIngestState makes the current serving state durable and reclaims
// WAL space: the extended dataset is saved first (so a crash between the two
// writes never leaves the dataset older than the index), then the sharded
// index snapshot, then every WAL segment fully covered by the snapshot is
// deleted. A no-op without -snapshot: the WAL then retains everything and
// replay covers restarts by itself.
func (s *server) persistIngestState(ctx context.Context) error {
	if s.opts.snapshotPath == "" {
		return nil
	}
	if err := s.acquire(ctx); err != nil {
		return err
	}
	ix := s.index.Load()
	n := ix.NumRecords()
	err := tasti.WriteFileAtomic(s.ingestDatasetPath(), s.ds.Save)
	if err == nil {
		err = tasti.WriteFileAtomic(s.opts.snapshotPath, ix.Save)
	}
	s.release()
	if err != nil {
		return err
	}
	removed, err := s.wal.TruncateThrough(n)
	if err != nil {
		return fmt.Errorf("snapshot saved but WAL truncation failed: %w", err)
	}
	s.log.Info("ingest state persisted",
		"snapshot", s.opts.snapshotPath, "records", n, "wal_segments_removed", removed)
	return nil
}

// labelForRefresh supplies annotations to the refresher's crack phase. Base
// records go through the serve-path labeler chain (billed, breaker-guarded);
// appended records use the ground truth that arrived with their ingest
// request, read under the index lock because the dataset slices grow
// concurrently with it held.
func (s *server) labelForRefresh(ctx context.Context, id int) (tasti.Annotation, error) {
	if id < s.opts.size {
		return tasti.LabelerWithContext(ctx, s.target).Label(id)
	}
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if id >= s.ds.Len() {
		return nil, fmt.Errorf("refresh: record %d past corpus end %d", id, s.ds.Len())
	}
	return s.ds.Truth[id], nil
}

// ingestRecord is one record in a POST /ingest body.
type ingestRecord struct {
	Features   []float64                `json:"features"`
	Annotation tasti.AnnotationEnvelope `json:"annotation"`
}

// ingestRequest is the POST /ingest body.
type ingestRequest struct {
	Records []ingestRecord `json:"records"`
}

// annotationKind maps the corpus to its required annotation schema.
func (s *server) annotationKind() string {
	switch s.name {
	case "wikisql":
		return "text"
	case "common-voice":
		return "speech"
	default:
		return "video"
	}
}

// decodeIngest reads and validates a POST /ingest body under a "decode"
// span, writing the 413/400 taxonomy itself; ok is false when a response
// has already been sent.
func (s *server) decodeIngest(w http.ResponseWriter, r *http.Request, sc *reqScope) (features [][]float64, anns []tasti.Annotation, ok bool) {
	dsp := sc.child("decode")
	defer dsp.End()
	var req ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.ingestMaxBodyBytes())).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes; split the batch", tooBig.Limit))
			return nil, nil, false
		}
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return nil, nil, false
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "no records")
		return nil, nil, false
	}
	dim := s.dim
	kind := s.annotationKind()
	features = make([][]float64, len(req.Records))
	anns = make([]tasti.Annotation, len(req.Records))
	for i, rec := range req.Records {
		if len(rec.Features) != dim {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("record %d has %d feature dims, corpus %s has %d", i, len(rec.Features), s.name, dim))
			return nil, nil, false
		}
		ann, err := rec.Annotation.Annotation()
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("record %d: %v", i, err))
			return nil, nil, false
		}
		if ann.Kind() != kind {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("record %d has %q annotation, corpus %s needs %q", i, ann.Kind(), s.name, kind))
			return nil, nil, false
		}
		features[i], anns[i] = rec.Features, ann
	}
	dsp.SetAttr("records", len(features))
	return features, anns, true
}

// handleIngest is POST /ingest: append records durably. A 200 is a
// durability receipt — the records' WAL frame was fsynced before the
// response was written, and they replay into the index after kill -9.
//
//	501  ingest disabled (no -wal-dir)
//	503  index building or WAL replaying (readiness), or pipeline closed
//	413  body over -ingest-max-body
//	400  malformed body, wrong feature dimension, or wrong annotation schema
//	429  ingest queue saturated, or the tenant's pending cap hit
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.opts.walDir == "" {
		httpError(w, http.StatusNotImplemented, "streaming ingest disabled: start tastiserve with -wal-dir")
		return
	}
	if s.notReady(w) {
		return
	}
	sc := scopeFrom(r.Context())
	features, anns, ok := s.decodeIngest(w, r, sc)
	if !ok {
		return
	}

	tenant := r.Header.Get("X-Tasti-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if !s.tenants.reserve(tenant, len(features)) {
		s.reg.Counter("tasti_ingest_tenant_rejections_total").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q has too many records in flight (cap %d)", tenant, s.tenants.cap))
		return
	}
	defer s.tenants.release(tenant, len(features))

	// The submit span covers enqueue through the durability ack; the writer
	// loop hangs wal/fsync and apply children directly off the request root,
	// the apply one landing after the ack by design (visibility follows
	// durability). The server-side ack histogram starts here, past request
	// parsing, so it isolates the queue + fsync cost the client-side
	// tasti_ingest_ack_seconds cannot.
	ssp := sc.child("submit")
	ssp.SetAttr("records", len(features))
	ackStart := time.Now()
	ids, err := s.ingester.SubmitTraced(r.Context(), features, anns, sc.rootSpan())
	ssp.End()
	if err == nil {
		s.reg.Histogram("tasti_ingest_server_ack_seconds", tasti.DefLatencyBuckets).
			Observe(time.Since(ackStart).Seconds())
		sc.setCost(int64(len(ids)), 0)
	}
	if err != nil {
		switch {
		case errors.Is(err, tasti.ErrIngestQueueSaturated):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, tasti.ErrIngestClosed), r.Context().Err() != nil:
			httpError(w, http.StatusServiceUnavailable, "ingest unavailable: "+err.Error())
		default:
			// Poisoned pipeline: the records are safe in the WAL if their
			// frame was written, but this process stopped accepting writes.
			httpError(w, http.StatusInternalServerError, "ingest pipeline failed: "+err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"base":  ids[0],
		"count": len(ids),
	})
}

// handleRefresh is POST /admin/refresh: force one drift-style refresh —
// clone, crack the worst-covered appended records, hot-swap — then persist
// the dataset and index snapshot and truncate covered WAL segments. 409
// marks a refresh already running, 502 a refresh that failed (the previous
// index keeps serving).
func (s *server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.opts.walDir == "" {
		httpError(w, http.StatusNotImplemented, "streaming ingest disabled: start tastiserve with -wal-dir")
		return
	}
	if s.notReady(w) {
		return
	}
	st, err := s.refresher.Refresh(r.Context())
	if err != nil {
		if errors.Is(err, tasti.ErrRefreshInProgress) {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		httpError(w, http.StatusBadGateway, "refresh failed, previous index still serving: "+err.Error())
		return
	}
	persisted := false
	if perr := s.persistIngestState(r.Context()); perr != nil {
		s.log.Warn("persisting refreshed state failed; WAL retains full coverage", "err", perr.Error())
	} else {
		persisted = s.opts.snapshotPath != ""
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"cracked":        st.Cracked,
		"catch_up":       st.CatchUp,
		"baseline":       st.Baseline,
		"elapsed_ms":     float64(st.Elapsed.Microseconds()) / 1000,
		"records":        int(s.corpusLen.Load()),
		"snapshot_saved": persisted,
	})
}
