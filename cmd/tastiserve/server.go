package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/tasti"
)

// server owns an index over one corpus and answers queries over HTTP. A
// single lock serializes queries against cracking: Index.Crack/CrackAll
// mutate Annotations and the distance table with no internal
// synchronization (see package core's concurrency contract), so every
// handler that touches the index — including nominally read-only
// propagation — takes mu for its full critical section. The lock is coarse
// on purpose: queries spend their time in propagation and sampling, which
// parallelize internally, so a finer-grained scheme would buy little until
// multiple indexes are served. TestServeQueriesConcurrentWithCracking holds
// this contract under the race detector.
type server struct {
	mu     sync.Mutex
	ds     *tasti.Dataset
	oracle tasti.Labeler
	index  *tasti.Index
	name   string
	seed   int64
}

// newServer generates the corpus and builds the index with the given
// parallelism level (<= 0 uses all CPUs).
func newServer(dsName string, size, train, reps int, seed int64, parallelism int) (*server, error) {
	ds, err := tasti.GenerateDataset(dsName, size, seed)
	if err != nil {
		return nil, err
	}
	cost := tasti.MaskRCNNCost
	if dsName == "wikisql" || dsName == "common-voice" {
		cost = tasti.HumanCost
	}
	oracle := tasti.NewOracle(ds, "target", cost)
	var key tasti.BucketKey
	switch dsName {
	case "wikisql":
		key = tasti.TextBucketKey()
	case "common-voice":
		key = tasti.SpeechBucketKey()
	default:
		key = tasti.VideoBucketKey(0.5)
	}
	cfg := tasti.DefaultConfig(train, reps, key, seed)
	cfg.Parallelism = parallelism
	index, err := tasti.Build(cfg, ds, oracle)
	if err != nil {
		return nil, err
	}
	return &server{ds: ds, oracle: oracle, index: index, name: dsName, seed: seed}, nil
}

// handler wires the routes.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/index", s.handleIndex)
	mux.HandleFunc("/query/aggregate", s.handleAggregate)
	mux.HandleFunc("/query/select", s.handleSelect)
	mux.HandleFunc("/query/limit", s.handleLimit)
	return mux
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// indexInfo is the /index response.
type indexInfo struct {
	Dataset         string `json:"dataset"`
	Records         int    `json:"records"`
	Representatives int    `json:"representatives"`
	LabelCalls      int64  `json:"index_label_calls"`
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, indexInfo{
		Dataset:         s.name,
		Records:         s.index.NumRecords(),
		Representatives: len(s.index.Table.Reps),
		LabelCalls:      s.index.Stats.TotalLabelCalls(),
	})
}

// queryRequest is the shared body of the query endpoints. Class/Count
// address video corpora; for text the predicate is "operator == Class"; for
// speech it is "gender == Class".
type queryRequest struct {
	Class  string  `json:"class"`
	Count  int     `json:"count"`
	Err    float64 `json:"err"`
	Budget int     `json:"budget"`
	Recall float64 `json:"recall"`
	K      int     `json:"k"`
	Crack  bool    `json:"crack"`
}

func (s *server) decode(r *http.Request, req *queryRequest) error {
	if r.Method != http.MethodPost {
		return fmt.Errorf("use POST")
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	// Defaults.
	if req.Class == "" {
		req.Class = "car"
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Err <= 0 {
		req.Err = 0.05
	}
	if req.Budget <= 0 {
		req.Budget = max(100, s.ds.Len()/40)
	}
	if req.Recall <= 0 || req.Recall >= 1 {
		req.Recall = 0.9
	}
	if req.K <= 0 {
		req.K = 10
	}
	return nil
}

// spec translates a request into a score function and predicate for the
// server's corpus.
func (s *server) spec(req queryRequest) (tasti.ScoreFunc, func(tasti.Annotation) bool) {
	switch s.name {
	case "wikisql":
		op := strings.ToUpper(req.Class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.TextAnnotation).Operator == op
		}
		return tasti.MatchScore(pred), pred
	case "common-voice":
		gender := strings.ToLower(req.Class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.SpeechAnnotation).Gender == gender
		}
		return tasti.MatchScore(pred), pred
	default:
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.VideoAnnotation).Count(req.Class) >= req.Count
		}
		return tasti.CountScore(req.Class), pred
	}
}

func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	score, _ := s.spec(req)
	scores, err := s.index.Propagate(score)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	counting := tasti.NewCountingLabeler(s.oracle)
	res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: req.Err, Delta: 0.05, MinSamples: 100, Seed: s.seed + 1,
	}, s.ds.Len(), scores, score, counting)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"estimate":    res.Estimate,
		"half_width":  res.HalfWidth,
		"label_calls": res.LabelerCalls,
	})
}

func (s *server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, pred := s.spec(req)
	scores, err := s.index.Propagate(tasti.MatchScore(pred))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: req.Budget, Target: req.Recall, Delta: 0.05, Seed: s.seed + 2,
	}, s.ds.Len(), scores, pred, s.oracle)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sample := res.Returned
	if len(sample) > 20 {
		sample = sample[:20]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"returned":    len(res.Returned),
		"threshold":   res.Threshold,
		"label_calls": res.OracleCalls,
		"sample_ids":  sample,
	})
}

func (s *server) handleLimit(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	score, pred := s.spec(req)
	scores, dists, err := s.index.PropagateNearest(score)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := tasti.FindLimit(req.K, scores, dists, pred, s.oracle)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	cracked := 0
	if req.Crack {
		before := len(s.index.Table.Reps)
		s.index.CrackAll(res.Labeled)
		cracked = len(s.index.Table.Reps) - before
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"found":       res.Found,
		"label_calls": res.OracleCalls,
		"exhausted":   res.Exhausted,
		"cracked":     cracked,
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response write
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
