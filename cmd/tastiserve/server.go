package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/tasti"
)

// serverOptions configures a query server. The zero value of every
// reliability knob disables it, reproducing the pre-hardening behavior.
type serverOptions struct {
	dataset     string
	size        int
	train       int
	reps        int
	seed        int64
	parallelism int
	// shards is the scatter-gather shard count (<= 1 serves one shard,
	// preserving the single-index snapshot format on disk). Results are
	// bitwise identical at every shard count; the knob trades per-shard
	// build, snapshot, and reload granularity. See docs/SHARDING.md.
	shards int
	// quantize builds the uint8 quantized scan plane: candidate-generation
	// scans stream 1-byte codes instead of float64 rows and rerank bound
	// survivors exactly, so results stay bitwise identical while the scanned
	// plane shrinks 8x. Persisted in the snapshot; /admin/status reports the
	// resident bytes and live rerank rate.
	quantize bool

	// queryTimeout bounds each /query/ request end to end (0 = unbounded).
	queryTimeout time.Duration
	// labelTimeout bounds each target-labeler invocation, during both index
	// construction and query sampling (0 = unbounded).
	labelTimeout time.Duration
	// retry retries transient labeler faults during construction and
	// queries; the zero value disables retrying.
	retry tasti.RetryPolicy
	// allowDegraded lets index construction complete around permanently
	// unlabelable records instead of failing.
	allowDegraded bool
	// faultRate injects seeded transient labeler faults at this per-attempt
	// probability — the chaos-serving knob (0 = healthy labeler).
	faultRate float64
	// breaker parameterizes the circuit breaker guarding the serve-path
	// labeler; the zero value uses the defaults.
	breaker tasti.BreakerPolicy
	// logger receives the server's structured logs; nil selects a text
	// handler on stderr (main wires -log-format=json here).
	logger *slog.Logger
	// snapshotPath is the durable home of the index: loaded at startup when
	// the file exists (skipping the build), written after a fresh build, and
	// re-read by POST /admin/reload and SIGHUP. Empty disables persistence.
	snapshotPath string

	// walDir enables streaming ingest: appended records are fsynced into a
	// write-ahead log here before they are acked, replayed into the index at
	// boot, and folded into the snapshot by POST /admin/refresh. Empty
	// disables POST /ingest (it answers 501). See docs/RELIABILITY.md.
	walDir string
	// walSegmentBytes bounds a WAL segment before rotation (<= 0 uses the
	// library default, 16 MiB).
	walSegmentBytes int64
	// ingestQueue bounds requests awaiting the ingest writer loop; a full
	// queue answers 429 (<= 0 uses the library default).
	ingestQueue int
	// ingestBatch bounds how many records one WAL frame (and fsync)
	// coalesces (<= 0 uses the library default).
	ingestBatch int
	// ingestMaxBody caps a POST /ingest body in bytes; larger bodies answer
	// 413 (<= 0: 8 MiB).
	ingestMaxBody int64
	// ingestTenantPending caps records a single tenant (X-Tasti-Tenant) may
	// have in flight through the ingest pipeline; beyond it the tenant gets
	// 429 while others keep writing (<= 0: 4096).
	ingestTenantPending int
	// driftWindow is how many recent appends the drift detector averages
	// over (<= 0: 256).
	driftWindow int
	// driftThreshold triggers a refresh once the windowed mean
	// nearest-representative distance exceeds threshold x the build-time
	// baseline (<= 0: 1.5).
	driftThreshold float64
	// refreshBudget bounds representatives added per refresh (<= 0 uses the
	// library default).
	refreshBudget int
	// refreshAuto lets drift trigger background refreshes; POST
	// /admin/refresh works either way.
	refreshAuto bool

	// labelStorePath is the durable home of the cross-query label store:
	// loaded at startup when the file exists, flushed on the labelFlush
	// ticker and at drain. Empty keeps the store in memory only — labels
	// still amortize across queries within the process lifetime.
	labelStorePath string
	// labelBudget caps total serve-path oracle calls across all tenants
	// (<= 0 = unlimited). Exhaustion degrades queries instead of failing
	// them; requests that cannot even start answer 429.
	labelBudget int64
	// tenantBudget caps serve-path oracle calls per tenant, keyed by
	// X-Tasti-Tenant (<= 0 = unlimited).
	tenantBudget int64
	// labelFlush is the background store-flush period (0 disables the loop;
	// the drain path still flushes).
	labelFlush time.Duration
	// labelInflight bounds concurrent distinct-record oracle calls through
	// the store before it answers saturation (<= 0 uses the store default).
	labelInflight int

	// traceSample is the fraction of /query/* and /ingest requests whose
	// full span tree is retained for GET /admin/traces (0 disables, >= 1
	// traces every request). Sampling is deterministic — every 1/rate-th
	// request — and tracing is record-only: results are bitwise identical
	// at every rate.
	traceSample float64
	// traceRing bounds retained traces; the oldest is overwritten
	// (<= 0: 256).
	traceRing int
	// healthInterval is the index-health collector period feeding the
	// skew/radius/WAL-lag gauges (0 disables the background loop;
	// GET /admin/status still collects on demand).
	healthInterval time.Duration
}

// traceRingCap resolves the trace-ring default.
func (o serverOptions) traceRingCap() int {
	if o.traceRing <= 0 {
		return 256
	}
	return o.traceRing
}

// ingestMaxBodyBytes resolves the body cap default.
func (o serverOptions) ingestMaxBodyBytes() int64 {
	if o.ingestMaxBody <= 0 {
		return 8 << 20
	}
	return o.ingestMaxBody
}

// tenantPendingCap resolves the per-tenant pending-records default.
func (o serverOptions) tenantPendingCap() int {
	if o.ingestTenantPending <= 0 {
		return 4096
	}
	return o.ingestTenantPending
}

// driftParams resolves the drift-detector defaults.
func (o serverOptions) driftParams() (window int, threshold float64) {
	window, threshold = o.driftWindow, o.driftThreshold
	if window <= 0 {
		window = 256
	}
	if threshold <= 0 {
		threshold = 1.5
	}
	return window, threshold
}

// shardCount normalizes the shard knob: anything below 1 serves one shard.
func (o serverOptions) shardCount() int {
	if o.shards < 1 {
		return 1
	}
	return o.shards
}

// server owns an index over one corpus and answers queries over HTTP. A
// single semaphore (sem, capacity 1) serializes queries against cracking:
// Index.Crack/CrackAll mutate Annotations and the distance table with no
// internal synchronization (see package core's concurrency contract), so
// every handler that touches the index — including nominally read-only
// propagation — holds the semaphore for its full critical section. A channel
// rather than a mutex so acquisition is context-aware: a client that
// disconnects or times out while queued stops waiting instead of taking the
// lock for a response nobody reads. The lock is coarse on purpose: queries
// spend their time in propagation and sampling, which parallelize
// internally, so a finer-grained scheme would buy little until multiple
// indexes are served. TestServeQueriesConcurrentWithCracking holds this
// contract under the race detector.
type server struct {
	sem  chan struct{}
	opts serverOptions
	name string
	seed int64

	// log is the structured logger; reg owns every metric the server emits
	// and renders them at GET /metrics. inFlight tracks requests currently
	// being served, across all routes.
	log      *slog.Logger
	reg      *tasti.MetricsRegistry
	inFlight *tasti.MetricGauge

	// ready flips to true once build() has published ds/target/breaker/
	// index below; handlers must observe ready before touching them.
	ready    atomic.Bool
	buildErr atomic.Value // string
	started  time.Time

	ds      *tasti.Dataset
	target  tasti.Labeler // serve-path labeler: retry(breaker(deadline(base)))
	breaker *tasti.Breaker

	// corpusLen mirrors ds.Len() and dim mirrors ds.FeatureDim() for
	// handlers that run OUTSIDE the index semaphore (request decoding,
	// /ingest validation). With streaming ingest on, ds grows under the
	// semaphore; reading its slice headers unsynchronized would race, so
	// lock-free paths read this atomic instead. dim never changes after
	// build, so the ready flag alone orders it.
	corpusLen atomic.Int64
	dim       int

	// index is the sharded serving index, swapped atomically by hot reload
	// — wholesale, or one shard at a time through ShardedIndex's own
	// per-shard pointers (POST /admin/reload?shard=i). Handlers load it once
	// per request after taking sem; every swap also takes sem, so a request
	// always sees one consistent index end to end and swaps land only at
	// request boundaries — never under an in-flight query.
	index atomic.Pointer[tasti.ShardedIndex]
	// reloading serializes reloads: a second reload arriving while one is
	// loading and validating is rejected, not queued.
	reloading atomic.Bool

	// Streaming ingest state, populated by initIngest when -wal-dir is set
	// (nil otherwise). The ingester's Apply callback and the refresher both
	// serialize index access through sem like every query handler.
	wal       *tasti.WAL
	ingester  *tasti.Ingester
	drift     *tasti.DriftDetector
	refresher *tasti.Refresher
	tenants   tenantLimiter

	// Observability plane (see cmd/tastiserve/admin.go): sampler decides
	// which requests retain a span tree in traces; ledger attributes every
	// query's and ingest's cost per tenant; health is the latest
	// index-health collection. All record-only — none of it feeds back
	// into query execution.
	sampler *tasti.TraceSampler
	traces  *tasti.TraceRing
	ledger  *tasti.CostLedger
	health  atomic.Pointer[healthSnapshot]

	// Cross-query cost control: labels is the shared record→annotation
	// store every query handler binds its sampling labeler through (hits
	// and coalesced calls spend nothing); budget admits each real oracle
	// call against the global and per-tenant caps. Unlike the index, both
	// are internally synchronized — they outlive index swaps and are shared
	// across requests without the semaphore.
	labels *tasti.LabelStore
	budget *tasti.BudgetManager
}

// newServerShell returns a server that is alive (serves /healthz and
// /readyz) but not ready: call build, or buildAsync, to construct the index.
func newServerShell(opts serverOptions) *server {
	lg := opts.logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	reg := tasti.NewMetricsRegistry()
	reg.Help("tasti_http_in_flight", "Requests currently being served, across all routes.")
	reg.Help("tasti_http_requests_total", "HTTP requests served, by route and status code.")
	reg.Help("tasti_http_errors_total", "HTTP 5xx responses, by route.")
	reg.Help("tasti_http_request_seconds", "End-to-end request latency in seconds, by route.")
	reg.Help("tasti_snapshot_reload_total", "Index hot-reload attempts, by outcome.")
	reg.Help("tasti_snapshot_reload_failures_total", "Hot reloads that failed validation and left the previous index serving.")
	reg.Help("tasti_snapshot_reload_seconds", "Hot-reload latency in seconds: snapshot load, validation, and swap.")
	reg.Help("tasti_shard_records", "Records owned by each shard, by shard.")
	reg.Help("tasti_shard_reps", "Cluster representatives carried by each shard's table, by shard.")
	reg.Help("tasti_shard_propagate_total", "Per-shard propagation passes served, by shard.")
	reg.Help("tasti_shard_reload_total", "Single-shard hot-reload attempts, by shard and outcome.")
	reg.Help("tasti_wal_frames_total", "WAL frames appended and fsynced.")
	reg.Help("tasti_wal_bytes_total", "Bytes appended to WAL segments.")
	reg.Help("tasti_wal_segments_total", "WAL segments created, including rotations.")
	reg.Help("tasti_wal_fsync_errors_total", "WAL frame fsyncs that failed; the affected batch was not acked.")
	reg.Help("tasti_wal_replay_records", "Records recovered from the WAL at the last boot.")
	reg.Help("tasti_wal_replay_skipped", "WAL records below the snapshot floor at the last boot.")
	reg.Help("tasti_wal_replay_segments", "WAL segments walked by the last boot's replay.")
	reg.Help("tasti_wal_replay_truncations_total", "Boot replays that dropped a torn or corrupt WAL tail.")
	reg.Help("tasti_ingest_records_total", "Records written into durable WAL frames.")
	reg.Help("tasti_ingest_acked_total", "Records acknowledged to submitters after their WAL fsync.")
	reg.Help("tasti_ingest_rejected_total", "Records rejected by ingest queue saturation.")
	reg.Help("tasti_ingest_batches_total", "Coalesced WAL frames written by the ingest writer loop.")
	reg.Help("tasti_ingest_queue_depth", "Requests waiting for the ingest writer loop.")
	reg.Help("tasti_ingest_ack_seconds", "Submit-to-ack latency in seconds, including the WAL fsync.")
	reg.Help("tasti_ingest_batch_records", "Records per coalesced WAL frame.")
	reg.Help("tasti_ingest_tenant_rejections_total", "Ingest requests rejected by the per-tenant pending-records cap.")
	reg.Help("tasti_drift_ratio", "Mean nearest-representative distance of recent appends over the baseline.")
	reg.Help("tasti_drift_baseline_distance", "Baseline mean nearest-representative distance, reset at build, replay, and refresh.")
	reg.Help("tasti_refresh_total", "Background index refresh attempts.")
	reg.Help("tasti_refresh_failed_total", "Background index refreshes that failed; the previous index keeps serving.")
	reg.Help("tasti_refresh_cracked_total", "Appended records cracked into representatives by refreshes.")
	reg.Help("tasti_refresh_running", "1 while a background refresh is running.")
	reg.Help("tasti_refresh_seconds", "Refresh latency in seconds: clone, crack, catch-up, swap.")
	reg.Help("tasti_vecmath_kernel", "Active vector-distance kernel implementation (value is always 1; the label carries the name).")
	reg.Gauge(fmt.Sprintf("tasti_vecmath_kernel{kernel=%q}", tasti.KernelName())).Set(1)
	reg.Help("tasti_build_info", "Build identity (value is always 1; labels carry the version, Go runtime, vecmath kernel, shard count, and snapshot format version).")
	reg.Gauge(fmt.Sprintf(`tasti_build_info{version=%q,go=%q,kernel=%q,shards="%d",snapshot="v%d"}`,
		tasti.Version, runtime.Version(), tasti.KernelName(), opts.shardCount(), tasti.SnapshotFormatVersion)).Set(1)
	reg.Help("tasti_traces_retained_total", "Sampled request traces pushed into the /admin/traces ring.")
	reg.Help("tasti_ingest_server_ack_seconds", "Server-side /ingest latency in seconds from decoded request to durability ack.")
	reg.Help("tasti_wal_lag_records", "Records retained in live WAL segments — the next boot's replay debt; refreshes truncate it.")
	reg.Help("tasti_wal_lag_segments", "Live WAL segments on disk.")
	reg.Help("tasti_wal_lag_bytes", "Bytes across live WAL segments on disk.")
	reg.Help("tasti_shard_record_skew", "Max-over-mean per-shard record count; 1.0 is perfectly balanced, ingest grows it between refreshes.")
	reg.Help("tasti_shard_rep_skew", "Max-over-mean per-shard representative count; 1.0 is perfectly balanced.")
	reg.Help("tasti_index_radius", "Nearest-representative distance quantiles across all records, by quantile; rising radii mean propagated scores extrapolate further.")
	reg.Help("tasti_labelstore_hits_total", "Label requests answered from the cross-query store or the index — zero oracle spend.")
	reg.Help("tasti_labelstore_misses_total", "Label requests that led an oracle call (singleflight leaders).")
	reg.Help("tasti_labelstore_coalesced_total", "Label requests that joined an in-flight oracle call for the same record instead of issuing their own.")
	reg.Help("tasti_labelstore_saturated_total", "Label requests rejected because the store's in-flight table was full (HTTP 429).")
	reg.Help("tasti_labelstore_entries", "Annotations held by the cross-query label store.")
	reg.Help("tasti_labelstore_flush_total", "Label-store snapshot flushes, by outcome.")
	reg.Help("tasti_budget_reservations_total", "Oracle-call reservations admitted by the budget manager.")
	reg.Help("tasti_budget_refunds_total", "Reservations refunded because the admitted oracle call failed.")
	reg.Help("tasti_budget_exhausted_total", "Label admissions rejected by an exhausted budget, by scope (global or tenant).")
	reg.Help("tasti_budget_remaining", "Oracle calls still admissible, by scope; absent when that scope is unlimited.")
	reg.Help("tasti_query_degraded_total", "Queries that returned a partial (Degraded) answer after mid-query budget exhaustion, by type.")
	labels := tasti.NewLabelStore(tasti.LabelStoreOptions{MaxInflight: opts.labelInflight, Telemetry: reg})
	budget := tasti.NewBudgetManager(tasti.BudgetConfig{
		Global:    opts.labelBudget,
		PerTenant: opts.tenantBudget,
		Telemetry: reg,
	})
	return &server{
		sem:      make(chan struct{}, 1),
		opts:     opts,
		name:     opts.dataset,
		seed:     opts.seed,
		started:  time.Now(),
		log:      lg,
		reg:      reg,
		inFlight: reg.Gauge("tasti_http_in_flight"),
		sampler:  tasti.NewTraceSampler(opts.traceSample),
		traces:   tasti.NewTraceRing(opts.traceRingCap()),
		ledger:   tasti.NewCostLedger(0),
		labels:   labels,
		budget:   budget,
	}
}

// newServer generates the corpus and builds the index synchronously.
func newServer(opts serverOptions) (*server, error) {
	s := newServerShell(opts)
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// build constructs the corpus, labeler chain, and index, then marks the
// server ready. On failure the error is also published to /readyz.
func (s *server) build() error {
	err := s.buildIndex()
	if err != nil {
		s.buildErr.Store(err.Error())
	}
	return err
}

// buildAsync runs build in the background so the HTTP listener can come up
// — and report liveness and build progress — while the index constructs.
func (s *server) buildAsync() {
	go func() {
		if err := s.build(); err != nil {
			s.log.Error("index build failed", "dataset", s.name, "err", err.Error())
		}
	}()
}

func (s *server) buildIndex() error {
	opts := s.opts
	ds, err := tasti.GenerateDataset(opts.dataset, opts.size, opts.seed)
	if err != nil {
		return err
	}
	// With ingest enabled, the corpus may have grown past the generated base:
	// the refresh path saves the extended dataset next to the WAL, and it is
	// the ground truth for every appended record. Restore it before snapshot
	// validation so an extended index snapshot is accepted.
	if opts.walDir != "" {
		ds = s.restoreIngestDataset(ds)
	}
	cost := tasti.MaskRCNNCost
	if opts.dataset == "wikisql" || opts.dataset == "common-voice" {
		cost = tasti.HumanCost
	}
	// base is the (possibly chaos-injected) target labeler tier shared by
	// construction and serving.
	base := tasti.NewOracle(ds, "target", cost)
	if opts.faultRate > 0 {
		base = tasti.NewFlakyLabeler(base, tasti.FlakyConfig{
			Seed:           opts.seed,
			TransientRate:  opts.faultRate,
			MaxConsecutive: 3,
		})
	}

	var key tasti.BucketKey
	switch opts.dataset {
	case "wikisql":
		key = tasti.TextBucketKey()
	case "common-voice":
		key = tasti.SpeechBucketKey()
	default:
		key = tasti.VideoBucketKey(0.5)
	}
	// Prefer a durable snapshot over re-spending the whole labeling budget:
	// when -snapshot names an existing file, load and validate it; any
	// corruption is contained by the typed snapshot errors and the server
	// falls back to building fresh. A fresh build is saved back to the same
	// path (atomically), so the next start — and every hot reload — has it.
	// One shard keeps the single-index container on disk; more shards write
	// the sharded container (manifest + one nested container per shard).
	// With ingest enabled a snapshot may cover any prefix from the base
	// corpus through the full extended dataset — WAL replay fills the rest.
	minRecords := ds.Len()
	if opts.walDir != "" {
		minRecords = opts.size
	}
	var index *tasti.ShardedIndex
	if opts.snapshotPath != "" {
		if _, err := os.Stat(opts.snapshotPath); err == nil {
			index, err = loadServingSnapshot(opts.snapshotPath, ds, opts.parallelism, opts.shardCount(), minRecords)
			if err != nil {
				s.log.Warn("snapshot unusable; building fresh",
					"path", opts.snapshotPath, "err", err.Error())
				index = nil
			} else {
				s.log.Info("index loaded from snapshot",
					"path", opts.snapshotPath, "records", index.NumRecords(),
					"shards", index.NumShards())
			}
		}
	}
	if index == nil {
		cfg := tasti.DefaultConfig(opts.train, opts.reps, key, opts.seed)
		cfg.Parallelism = opts.parallelism
		cfg.Retry = opts.retry
		cfg.LabelTimeout = opts.labelTimeout
		cfg.AllowDegraded = opts.allowDegraded
		cfg.Quantize = opts.quantize
		cfg.Telemetry = s.reg
		built, err := tasti.Build(cfg, ds, base)
		if err != nil {
			return err
		}
		// The single-shard snapshot must be written before SplitIndex takes
		// ownership of the built index.
		if opts.snapshotPath != "" && opts.shardCount() == 1 {
			if err := tasti.WriteFileAtomic(opts.snapshotPath, built.Save); err != nil {
				return fmt.Errorf("saving index snapshot: %w", err)
			}
			s.log.Info("index snapshot saved", "path", opts.snapshotPath)
		}
		index, err = tasti.SplitIndex(built, opts.shardCount())
		if err != nil {
			return err
		}
		if opts.snapshotPath != "" && opts.shardCount() > 1 {
			if err := tasti.WriteFileAtomic(opts.snapshotPath, index.Save); err != nil {
				return fmt.Errorf("saving index snapshot: %w", err)
			}
			s.log.Info("sharded index snapshot saved",
				"path", opts.snapshotPath, "shards", index.NumShards())
		}
	}
	index.SetTelemetry(s.reg)
	// Seed the cross-query label store from its snapshot: annotations bought
	// by yesterday's queries are free today. Corruption is contained by the
	// typed snapshot errors — the store starts empty and refills. Index-owned
	// annotations need no seeding: the store's lookup path reads them on
	// demand and promotes hits.
	if opts.labelStorePath != "" {
		if _, err := os.Stat(opts.labelStorePath); err == nil {
			prev, lerr := tasti.LoadLabelStoreFile(opts.labelStorePath, tasti.LabelStoreOptions{})
			if lerr != nil {
				s.log.Warn("label store unusable; starting empty",
					"path", opts.labelStorePath, "err", lerr.Error())
			} else {
				s.labels.Warm(prev.Annotations())
				s.labels.MarkClean()
				s.log.Info("label store loaded",
					"path", opts.labelStorePath, "labels", s.labels.Len())
			}
		}
	}
	// Replay the WAL into the index and start the ingest pipeline before the
	// server flips ready: POST /ingest answers 503 for the whole replay.
	if opts.walDir != "" {
		if err := s.initIngest(index, ds); err != nil {
			return err
		}
	}

	// Serve-path chain, outermost first: retries recover transient faults,
	// the breaker fails fast while the tier is unhealthy (and feeds
	// /readyz), the deadline bounds each call's latency. Each layer reports
	// its outcomes into the server's registry.
	var serveLab tasti.Labeler = base
	if opts.labelTimeout > 0 {
		dl := tasti.NewDeadlineLabeler(serveLab, opts.labelTimeout)
		dl.SetTelemetry(s.reg)
		serveLab = dl
	}
	breaker := tasti.NewBreakerLabeler(serveLab, opts.breaker)
	breaker.SetTelemetry(s.reg)
	serveLab = breaker
	if opts.retry.Enabled() {
		rt := tasti.NewRetryLabeler(serveLab, opts.retry)
		rt.SetTelemetry(s.reg)
		serveLab = rt
	}

	s.ds = ds
	s.dim = ds.FeatureDim()
	s.corpusLen.Store(int64(ds.Len()))
	s.target = serveLab
	s.breaker = breaker
	s.index.Store(index)
	s.ready.Store(true)
	s.log.Info("index built",
		"dataset", s.name,
		"records", ds.Len(),
		"shards", index.NumShards(),
		"representatives", index.RepCount(),
		"label_calls", index.Stats.TotalLabelCalls(),
		"stats", index.Stats.String())
	return nil
}

// loadIndexSnapshot reads, checksum-verifies, and validates an index
// snapshot, and checks it actually describes the server's corpus — a
// snapshot of the wrong dataset propagates garbage scores, so it is rejected
// like any other corruption. Without ingest, minRecords equals the corpus
// size and the check is exact; with ingest, a snapshot may cover any prefix
// from the base corpus (minRecords) through the full extended dataset, and
// WAL replay supplies the remainder.
func loadIndexSnapshot(path string, ds *tasti.Dataset, parallelism, minRecords int) (*tasti.Index, error) {
	var ix *tasti.Index
	err := tasti.ReadSnapshotFile(path, func(r io.Reader) error {
		var lerr error
		ix, lerr = tasti.LoadIndex(r)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	if ix.NumRecords() < minRecords || ix.NumRecords() > ds.Len() {
		return nil, fmt.Errorf("snapshot indexes %d records, the serving corpus covers [%d,%d]",
			ix.NumRecords(), minRecords, ds.Len())
	}
	// The persisted snapshot does not carry the build configuration.
	ix.SetParallelism(parallelism)
	return ix, nil
}

// loadServingSnapshot restores the sharded serving index from a snapshot of
// either generation: a sharded container is loaded as saved (the snapshot's
// shard layout wins over the -shards flag, since per-shard reload must agree
// with the file's frames), while a legacy single-index container — framed or
// pre-framing gob — is loaded through the existing single-index path and
// re-sharded to the configured count.
func loadServingSnapshot(path string, ds *tasti.Dataset, parallelism, shards, minRecords int) (*tasti.ShardedIndex, error) {
	var sx *tasti.ShardedIndex
	err := tasti.ReadSnapshotFile(path, func(r io.Reader) error {
		var lerr error
		sx, lerr = tasti.LoadShardedIndex(r)
		return lerr
	})
	if err != nil {
		if !errors.Is(err, tasti.ErrSnapshotKind) && !errors.Is(err, tasti.ErrSnapshotBadMagic) {
			return nil, err
		}
		ix, lerr := loadIndexSnapshot(path, ds, parallelism, minRecords)
		if lerr != nil {
			return nil, lerr
		}
		return tasti.SplitIndex(ix, shards)
	}
	if sx.NumRecords() < minRecords || sx.NumRecords() > ds.Len() {
		return nil, fmt.Errorf("snapshot indexes %d records, the serving corpus covers [%d,%d]",
			sx.NumRecords(), minRecords, ds.Len())
	}
	sx.SetParallelism(parallelism)
	return sx, nil
}

// errReloadInProgress rejects a reload that arrives while another is still
// loading and validating.
var errReloadInProgress = errors.New("reload already in progress")

// reload replaces the serving index with a freshly loaded copy of the
// snapshot file, with zero downtime: the new index is read and validated
// entirely off the request path, and only the pointer swap takes the index
// lock, so it lands between requests. Validation failure is contained — the
// previous index keeps serving, the failure is counted and logged.
func (s *server) reload(ctx context.Context) error {
	if s.opts.snapshotPath == "" {
		return errors.New("no -snapshot path configured")
	}
	if s.opts.walDir != "" {
		// With streaming ingest, the snapshot on disk may lag the live index
		// by acked appends; swapping it in would fork record IDs from the
		// WAL. The refresh path owns snapshotting instead.
		return errors.New("hot reload is disabled while streaming ingest is on; POST /admin/refresh re-cracks and snapshots instead")
	}
	if !s.reloading.CompareAndSwap(false, true) {
		return errReloadInProgress
	}
	defer s.reloading.Store(false)

	start := time.Now()
	next, err := loadServingSnapshot(s.opts.snapshotPath, s.ds, s.opts.parallelism, s.opts.shardCount(), s.ds.Len())
	if err != nil {
		s.reg.Counter(`tasti_snapshot_reload_total{outcome="error"}`).Inc()
		s.reg.Counter("tasti_snapshot_reload_failures_total").Inc()
		s.log.Error("index reload failed; previous index keeps serving",
			"path", s.opts.snapshotPath, "err", err.Error())
		return err
	}
	next.SetTelemetry(s.reg)
	if err := s.acquire(ctx); err != nil {
		s.reg.Counter(`tasti_snapshot_reload_total{outcome="error"}`).Inc()
		s.reg.Counter("tasti_snapshot_reload_failures_total").Inc()
		return fmt.Errorf("canceled waiting to swap the index: %w", err)
	}
	prev := s.index.Swap(next)
	s.release()
	elapsed := time.Since(start)
	s.reg.Counter(`tasti_snapshot_reload_total{outcome="ok"}`).Inc()
	s.reg.Histogram("tasti_snapshot_reload_seconds", tasti.DefLatencyBuckets).Observe(elapsed.Seconds())
	s.log.Info("index reloaded",
		"path", s.opts.snapshotPath,
		"records", next.NumRecords(),
		"shards", next.NumShards(),
		"representatives", next.RepCount(),
		"previous_representatives", prev.RepCount(),
		"elapsed_ms", float64(elapsed.Microseconds())/1000)
	return nil
}

// reloadShard replaces the single shard i from the snapshot file, leaving
// its peers serving untouched — the rolling-upgrade primitive. Like reload,
// the shard is read and validated entirely off the request path; only the
// per-shard pointer swap takes the index lock. Requires a sharded snapshot:
// a single-index container fails with the snapshot-kind error and the old
// shard keeps serving.
func (s *server) reloadShard(ctx context.Context, i int) error {
	if s.opts.snapshotPath == "" {
		return errors.New("no -snapshot path configured")
	}
	if s.opts.walDir != "" {
		return errors.New("hot reload is disabled while streaming ingest is on; POST /admin/refresh re-cracks and snapshots instead")
	}
	if !s.reloading.CompareAndSwap(false, true) {
		return errReloadInProgress
	}
	defer s.reloading.Store(false)

	fail := func(err error) error {
		s.reg.Counter(fmt.Sprintf(`tasti_shard_reload_total{shard="%d",outcome="error"}`, i)).Inc()
		s.reg.Counter("tasti_snapshot_reload_failures_total").Inc()
		s.log.Error("shard reload failed; previous shard keeps serving",
			"path", s.opts.snapshotPath, "shard", i, "err", err.Error())
		return err
	}
	start := time.Now()
	var sh *tasti.Shard
	err := tasti.ReadSnapshotFile(s.opts.snapshotPath, func(r io.Reader) error {
		var lerr error
		sh, lerr = tasti.LoadShard(r, i)
		return lerr
	})
	if err != nil {
		return fail(err)
	}
	if err := s.acquire(ctx); err != nil {
		return fail(fmt.Errorf("canceled waiting to swap shard %d: %w", i, err))
	}
	err = s.index.Load().ReplaceShard(i, sh)
	s.release()
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)
	s.reg.Counter(fmt.Sprintf(`tasti_shard_reload_total{shard="%d",outcome="ok"}`, i)).Inc()
	s.reg.Histogram("tasti_snapshot_reload_seconds", tasti.DefLatencyBuckets).Observe(elapsed.Seconds())
	s.log.Info("shard reloaded",
		"path", s.opts.snapshotPath,
		"shard", i,
		"records", sh.NumRecords(),
		"representatives", len(sh.Table.Reps),
		"elapsed_ms", float64(elapsed.Microseconds())/1000)
	return nil
}

// handleReload is POST /admin/reload: re-read the snapshot file and swap it
// in — the whole index, or a single shard with ?shard=i (zero downtime for
// its peers). SIGHUP triggers the whole-index path. 409 marks a reload
// already running, 502 a snapshot that failed to load or validate (the old
// index or shard keeps serving).
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.notReady(w) {
		return
	}
	body := map[string]interface{}{"status": "reloaded"}
	var err error
	if arg := r.URL.Query().Get("shard"); arg != "" {
		var i int
		if i, err = strconv.Atoi(arg); err != nil {
			httpError(w, http.StatusBadRequest, "bad shard number: "+arg)
			return
		}
		err = s.reloadShard(r.Context(), i)
		body["shard"] = i
	} else {
		err = s.reload(r.Context())
	}
	if err != nil {
		switch {
		case errors.Is(err, errReloadInProgress):
			httpError(w, http.StatusConflict, err.Error())
		default:
			httpError(w, http.StatusBadGateway, "reload failed, previous index still serving: "+err.Error())
		}
		return
	}
	body["records"] = s.index.Load().NumRecords()
	writeJSON(w, http.StatusOK, body)
}

// acquire takes the index lock, giving up when ctx is canceled — a
// disconnected client or an expired per-request timeout stops queueing.
func (s *server) acquire(ctx context.Context) error {
	// Checked first: a select with an expired context and a free semaphore
	// picks a case at random, and an already-canceled request must never
	// take the lock.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *server) release() { <-s.sem }

// handler wires the routes behind the hardening middleware: panic recovery
// outermost, then the per-request query timeout.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/index", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query/aggregate", s.handleAggregate)
	mux.HandleFunc("/query/select", s.handleSelect)
	mux.HandleFunc("/query/limit", s.handleLimit)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/refresh", s.handleRefresh)
	mux.HandleFunc("/admin/traces", s.handleTraces)
	mux.HandleFunc("/admin/ledger", s.handleLedger)
	mux.HandleFunc("/admin/status", s.handleStatus)
	return s.recoverPanics(s.instrument(s.withQueryTimeout(mux)))
}

// handleMetrics renders every registered metric in the Prometheus text
// exposition format. The breaker-state gauge is refreshed at scrape time so
// a tier that went unhealthy between requests still reads correctly.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.ready.Load() {
		s.reg.Gauge("tasti_breaker_state").Set(float64(s.breaker.State()))
		// Per-shard record/representative gauges refresh at scrape time, so
		// cracks and rolling reloads between scrapes still read correctly.
		s.index.Load().PublishMetrics()
	}
	s.publishBudgetMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // best-effort response write
}

// publishBudgetMetrics refreshes the budget-remaining gauges at scrape time:
// the global pool under scope="global", and each tenant that has spent labels
// under scope="tenant". Unlimited scopes publish nothing — absence, not a
// sentinel value. Tenant names come from the budget's own spend books, so the
// series set is bounded by tenants actually admitted, not by attacker-minted
// header values on free routes.
func (s *server) publishBudgetMetrics() {
	if s.budget.GlobalCap() > 0 {
		_, globalLeft := s.budget.Remaining("")
		s.reg.Gauge(`tasti_budget_remaining{scope="global"}`).Set(float64(globalLeft))
	}
	if s.budget.PerTenantCap() > 0 {
		for tenant := range s.budget.Spent() {
			left, _ := s.budget.Remaining(tenant)
			s.reg.Gauge(fmt.Sprintf(`tasti_budget_remaining{scope="tenant",tenant=%q}`, tenant)).Set(float64(left))
		}
	}
}

// flushLabels persists the cross-query label store to its snapshot path,
// skipping the write when nothing changed since the last flush. Safe to call
// concurrently with serving: the store serializes Save internally and the
// write is atomic (temp + fsync + rename), so a kill -9 mid-flush leaves the
// previous snapshot intact.
func (s *server) flushLabels() {
	if s.opts.labelStorePath == "" || s.labels.Dirty() == 0 {
		return
	}
	if err := s.labels.Flush(s.opts.labelStorePath); err != nil {
		s.reg.Counter(`tasti_labelstore_flush_total{outcome="error"}`).Inc()
		s.log.Warn("label-store flush failed; annotations stay in memory",
			"path", s.opts.labelStorePath, "err", err.Error())
		return
	}
	s.reg.Counter(`tasti_labelstore_flush_total{outcome="ok"}`).Inc()
	s.log.Info("label store flushed",
		"path", s.opts.labelStorePath, "labels", s.labels.Len())
}

// startLabelFlushLoop launches the periodic store flusher when a path and a
// positive -label-flush period are configured. The drain path flushes once
// more either way, so the loop only bounds how much a crash can lose.
func (s *server) startLabelFlushLoop() {
	if s.opts.labelStorePath == "" || s.opts.labelFlush <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(s.opts.labelFlush)
		defer t.Stop()
		for range t.C {
			s.flushLabels()
		}
	}()
}

// statusRecorder captures the response status code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// routeLabel normalizes a request path to a bounded metric label, so an
// attacker probing random paths cannot mint unbounded series.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/index", "/metrics",
		"/query/aggregate", "/query/select", "/query/limit",
		"/ingest", "/admin/reload", "/admin/refresh",
		"/admin/traces", "/admin/ledger", "/admin/status":
		return path
	}
	return "other"
}

// instrument wraps every request with metrics — request/error counters by
// route, a latency histogram, the in-flight gauge — and one structured log
// line carrying route, method, status, latency, trace ID, and query type.
// Probe routes log at debug so scrapes don't drown the query log. It also
// owns the request's observability scope: every request gets a trace ID,
// sampled query/ingest requests get a span tree retained in the trace ring,
// and costed routes get a ledger entry once the response is written.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		kind, costed := costKind(route)
		sc := &reqScope{id: tasti.NewTraceID()}
		if costed && s.sampler.Sample() {
			sc.tr = tasti.NewTrace(route)
			sc.tr.SetID(sc.id)
		}
		r = r.WithContext(withScope(r.Context(), sc))
		s.inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.inFlight.Dec()
		s.reg.Counter(fmt.Sprintf(`tasti_http_requests_total{route=%q,code="%d"}`, route, rec.code)).Inc()
		if rec.code >= 500 {
			s.reg.Counter(fmt.Sprintf(`tasti_http_errors_total{route=%q}`, route)).Inc()
		}
		s.reg.Histogram(fmt.Sprintf(`tasti_http_request_seconds{route=%q}`, route), tasti.DefLatencyBuckets).Observe(elapsed.Seconds())
		if sc.tr != nil {
			sc.tr.Finish()
			s.traces.Push(route, sc.tr)
			s.reg.Counter("tasti_traces_retained_total").Inc()
		}
		if costed {
			s.ledger.Record(tasti.LedgerEntry{
				Tenant:  r.Header.Get("X-Tasti-Tenant"),
				Kind:    kind,
				TraceID: sc.id,
				Labels:  sc.labels.Load(),
				Records: sc.records.Load(),
				Shards:  sc.shards.Load(),
				Hits:    sc.hits.Load(),
				WallNS:  elapsed.Nanoseconds(),
				Status:  rec.code,
				When:    time.Now(),
			})
		}

		attrs := []any{
			"method", r.Method,
			"route", route,
			"status", rec.code,
			"latency_ms", float64(elapsed.Microseconds()) / 1000,
			"trace_id", sc.id,
		}
		if qt, ok := strings.CutPrefix(route, "/query/"); ok {
			attrs = append(attrs, "query_type", qt)
		}
		level := slog.LevelInfo
		if route == "/healthz" || route == "/readyz" || route == "/metrics" {
			level = slog.LevelDebug
		}
		s.log.Log(r.Context(), level, "request", attrs...)
	})
}

// recoverPanics turns a panicking handler into a 500 instead of killing the
// connection (and, for handlers run outside http.Server, the process).
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(p))
				httpError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withQueryTimeout derives a deadline-bound context for /query/ requests, so
// lock waits, propagation, and sampling all stop at the budget.
func (s *server) withQueryTimeout(next http.Handler) http.Handler {
	if s.opts.queryTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/query/") {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.queryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// handleReady reports whether queries can be served, and the health of the
// labeler tier behind them: 200 once the index is built, 503 while it is
// still building or after the build failed.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		body := map[string]interface{}{"status": "building"}
		if err, ok := s.buildErr.Load().(string); ok {
			body["status"] = "build failed"
			body["error"] = err
		}
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	ix := s.index.Load()
	body := map[string]interface{}{
		"status":           "ready",
		"dataset":          s.name,
		"records":          ix.NumRecords(),
		"degraded":         ix.Stats.Degraded(),
		"breaker_state":    s.breaker.State().String(),
		"breaker_trips":    s.breaker.Trips(),
		"breaker_rejected": s.breaker.Rejected(),
	}
	// The health collector's last snapshot rides along so a readiness probe
	// (or an operator curling it) sees shard balance and replay debt without
	// a fresh — semaphore-taking — collection.
	if h := s.health.Load(); h != nil {
		body["record_skew"] = h.RecordSkew
		body["health_age_seconds"] = time.Since(h.At).Seconds()
		if h.Drift != nil {
			body["drift_ratio"] = h.Drift.Ratio
		}
		if h.WAL != nil {
			body["wal_lag_records"] = h.WAL.LagRecords
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// notReady rejects a query while the index is still building.
func (s *server) notReady(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return false
	}
	httpError(w, http.StatusServiceUnavailable, "index not ready")
	return true
}

// indexInfo is the /index response.
type indexInfo struct {
	Dataset         string `json:"dataset"`
	Records         int    `json:"records"`
	Shards          int    `json:"shards"`
	Representatives int    `json:"representatives"`
	LabelCalls      int64  `json:"index_label_calls"`
	DegradedReps    int    `json:"degraded_reps"`
	LabelRetries    int64  `json:"build_label_retries"`
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.notReady(w) {
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, "canceled waiting for the index")
		return
	}
	defer s.release()
	ix := s.index.Load()
	writeJSON(w, http.StatusOK, indexInfo{
		Dataset:         s.name,
		Records:         ix.NumRecords(),
		Shards:          ix.NumShards(),
		Representatives: ix.RepCount(),
		LabelCalls:      ix.Stats.TotalLabelCalls(),
		DegradedReps:    len(ix.Stats.DegradedReps),
		LabelRetries:    ix.Stats.LabelRetries,
	})
}

// queryRequest is the shared body of the query endpoints. Class/Count
// address video corpora; for text the predicate is "operator == Class"; for
// speech it is "gender == Class".
type queryRequest struct {
	Class  string  `json:"class"`
	Count  int     `json:"count"`
	Err    float64 `json:"err"`
	Budget int     `json:"budget"`
	Recall float64 `json:"recall"`
	K      int     `json:"k"`
	Crack  bool    `json:"crack"`
}

func (s *server) decode(r *http.Request, req *queryRequest) error {
	if r.Method != http.MethodPost {
		return fmt.Errorf("use POST")
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	// Defaults.
	if req.Class == "" {
		req.Class = "car"
	}
	if req.Count <= 0 {
		req.Count = 1
	}
	if req.Err <= 0 {
		req.Err = 0.05
	}
	if req.Budget <= 0 {
		req.Budget = max(100, int(s.corpusLen.Load())/40)
	}
	if req.Recall <= 0 || req.Recall >= 1 {
		req.Recall = 0.9
	}
	if req.K <= 0 {
		req.K = 10
	}
	return nil
}

// spec translates a request into a score function and predicate for the
// server's corpus.
func (s *server) spec(req queryRequest) (tasti.ScoreFunc, func(tasti.Annotation) bool) {
	switch s.name {
	case "wikisql":
		op := strings.ToUpper(req.Class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.TextAnnotation).Operator == op
		}
		return tasti.MatchScore(pred), pred
	case "common-voice":
		gender := strings.ToLower(req.Class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.SpeechAnnotation).Gender == gender
		}
		return tasti.MatchScore(pred), pred
	default:
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.VideoAnnotation).Count(req.Class) >= req.Count
		}
		return tasti.CountScore(req.Class), pred
	}
}

// queryLabeler assembles one request's sampling labeler, innermost first: the
// serve chain (retry/breaker/deadline), the cross-query label store with
// budget admission keyed by X-Tasti-Tenant and a free-lookup into the index's
// own annotations, context binding so a disconnected client cancels in-flight
// calls, and the per-request meter feeding the cost ledger. Called with the
// index semaphore held, like every query-path index access.
func (s *server) queryLabeler(ctx context.Context, r *http.Request, ix *tasti.ShardedIndex, sc *reqScope) tasti.Labeler {
	bound := s.labels.Bind(s.target, s.budget, r.Header.Get("X-Tasti-Tenant"), ix.AnnotationOf)
	return meter(tasti.LabelerWithContext(ctx, bound), ix, s.labels, sc)
}

// queryError maps a failed query to a response: cancellations and breaker
// rejections are the caller's problem or a temporary outage (503); an
// exhausted label budget or a saturated label store is backpressure (429 with
// Retry-After and the tenant's budget position — reached only when the query
// could not even produce a partial answer, since mid-query exhaustion
// degrades instead); anything else is a server error (500).
func (s *server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		httpError(w, http.StatusServiceUnavailable, "query canceled or timed out")
	case errors.Is(err, tasti.ErrBudgetExhausted), errors.Is(err, tasti.ErrLabelStoreSaturated):
		s.rejectOverBudget(w, r, err)
	case errors.Is(err, tasti.ErrBreakerOpen):
		httpError(w, http.StatusServiceUnavailable, "labeler circuit open: "+err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// rejectOverBudget answers 429: Retry-After (saturation clears as in-flight
// calls drain; exhaustion clears when caps are raised or reset, so the value
// is advisory) plus the requesting tenant's remaining budget in
// X-Tasti-Budget-Remaining and the global pool in
// X-Tasti-Budget-Global-Remaining, each omitted when that scope is unlimited.
func (s *server) rejectOverBudget(w http.ResponseWriter, r *http.Request, err error) {
	tenantLeft, globalLeft := s.budget.Remaining(r.Header.Get("X-Tasti-Tenant"))
	w.Header().Set("Retry-After", "30")
	if tenantLeft != tasti.BudgetUnlimited {
		w.Header().Set("X-Tasti-Budget-Remaining", strconv.FormatInt(tenantLeft, 10))
	}
	if globalLeft != tasti.BudgetUnlimited {
		w.Header().Set("X-Tasti-Budget-Global-Remaining", strconv.FormatInt(globalLeft, 10))
	}
	httpError(w, http.StatusTooManyRequests, "label budget exhausted or label store saturated: "+err.Error())
}

func (s *server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		httpError(w, http.StatusServiceUnavailable, "canceled waiting for the index")
		return
	}
	defer s.release()
	ix := s.index.Load()
	sc := scopeFrom(ctx)
	score, _ := s.spec(req)
	psp := sc.child("propagate")
	scores, err := ix.PropagateSpan(score, psp)
	psp.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	sc.setCost(int64(len(scores)), int64(ix.NumShards()))
	lab := s.queryLabeler(ctx, r, ix, sc)
	esp := sc.child("estimate")
	res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
		ErrTarget: req.Err, Delta: 0.05, MinSamples: 100, Seed: s.seed + 1,
		Telemetry: s.reg,
	}, s.ds.Len(), scores, score, lab)
	esp.SetAttr("label_calls", res.LabelerCalls)
	esp.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"estimate":    res.Estimate,
		"half_width":  res.HalfWidth,
		"label_calls": res.LabelerCalls,
		"degraded":    res.Degraded,
	})
}

func (s *server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		httpError(w, http.StatusServiceUnavailable, "canceled waiting for the index")
		return
	}
	defer s.release()
	ix := s.index.Load()
	sc := scopeFrom(ctx)
	_, pred := s.spec(req)
	psp := sc.child("propagate")
	scores, err := ix.PropagateSpan(tasti.MatchScore(pred), psp)
	psp.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	sc.setCost(int64(len(scores)), int64(ix.NumShards()))
	ssp := sc.child("sample")
	res, err := tasti.SelectWithRecall(tasti.SelectOptions{
		Budget: req.Budget, Target: req.Recall, Delta: 0.05, Seed: s.seed + 2,
		Telemetry: s.reg, Parallelism: s.opts.parallelism,
	}, s.ds.Len(), scores, pred, s.queryLabeler(ctx, r, ix, sc))
	ssp.SetAttr("label_calls", res.OracleCalls)
	ssp.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	sample := res.Returned
	if len(sample) > 20 {
		sample = sample[:20]
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"returned":    len(res.Returned),
		"threshold":   res.Threshold,
		"label_calls": res.OracleCalls,
		"sample_ids":  sample,
		"degraded":    res.Degraded,
	})
}

func (s *server) handleLimit(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	var req queryRequest
	if err := s.decode(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		httpError(w, http.StatusServiceUnavailable, "canceled waiting for the index")
		return
	}
	defer s.release()
	ix := s.index.Load()
	sc := scopeFrom(ctx)
	score, pred := s.spec(req)
	psp := sc.child("propagate")
	scores, dists, err := ix.PropagateNearestSpan(score, psp)
	psp.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	sc.setCost(int64(len(scores)), int64(ix.NumShards()))
	// Per-shard sorted runs merged under limitq's comparator: the scan order
	// is bitwise identical to the unsharded sort over the full vectors.
	osp := sc.child("order")
	order := ix.LimitOrderSpan(scores, dists, osp)
	osp.End()
	scan := sc.child("scan")
	res, err := tasti.FindLimitScan(tasti.LimitOptions{Telemetry: s.reg},
		req.K, order, pred, s.queryLabeler(ctx, r, ix, sc))
	scan.SetAttr("label_calls", res.OracleCalls)
	scan.End()
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	cracked := 0
	if req.Crack {
		before := ix.RepCount()
		ix.CrackAll(res.Labeled)
		cracked = ix.RepCount() - before
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"found":       res.Found,
		"label_calls": res.OracleCalls,
		"exhausted":   res.Exhausted,
		"cracked":     cracked,
		"degraded":    res.Degraded,
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response write
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
