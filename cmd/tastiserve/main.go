// Command tastiserve builds a TASTI index over a synthetic corpus and serves
// queries over HTTP with a JSON API. The index builds in the background: the
// server comes up immediately, /healthz reports liveness, and /readyz flips
// to 200 once queries can be served.
//
// Usage:
//
//	tastiserve -dataset night-street -size 10000 -addr :8080
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /readyz           readiness + labeler circuit-breaker state
//	GET  /index            index statistics
//	GET  /metrics          Prometheus text-format metrics
//	POST /query/aggregate  {"class":"car","err":0.05}
//	POST /query/select     {"class":"car","count":1,"budget":300,"recall":0.9}
//	POST /query/limit      {"class":"car","count":5,"k":10,"crack":true}
//	POST /ingest           append records durably (needs -wal-dir)
//	POST /admin/reload     swap in the -snapshot file with zero downtime
//	POST /admin/reload?shard=i  swap in one shard, peers untouched
//	POST /admin/refresh    re-crack drifted appends, snapshot, truncate WAL
//	GET  /admin/traces     retained sampled request traces (?route=, ?min_ms=)
//	GET  /admin/ledger     per-tenant query cost ledger + conservation check
//	GET  /admin/status     one-shot index-health and build-identity snapshot
//
// -snapshot names the index's durable home: loaded at startup when present
// (skipping the labeling spend of a rebuild), written after a fresh build,
// and hot-reloaded — with checksum verification and validation, falling back
// to the serving index on any failure — via POST /admin/reload or SIGHUP.
//
// -shards partitions the corpus into N contiguous record-range shards served
// through a scatter-gather layer: query results are bitwise identical at
// every shard count, while snapshots gain a per-shard layout, /metrics gains
// per-shard series, and /admin/reload?shard=i swaps one shard at a time. See
// docs/SHARDING.md for the lifecycle and runbook.
//
// -wal-dir turns on streaming ingest: POST /ingest bodies are fsynced into a
// write-ahead log before the 200 is written, so an acknowledged record
// survives kill -9 and replays into the index at the next boot. A drift
// detector watches appended records' nearest-representative distances and —
// with -refresh-auto — re-cracks the worst-covered appends on a cloned index
// swapped in with zero downtime. POST /admin/refresh forces the same cycle
// and then persists the snapshot pair, truncating covered WAL segments.
// While -wal-dir is set, /admin/reload is disabled (a stale snapshot swap
// would fork the record-ID sequence the WAL continues from). See
// docs/RELIABILITY.md for the durability contract and runbook.
//
// -label-store, -label-budget, and -tenant-budget are the cost-control
// plane: a cross-query label store consulted before any target-labeler call
// (hits and coalesced concurrent requests spend nothing), persisted as its
// own snapshot container, plus global and per-tenant oracle-call budgets.
// A budget exhausted mid-query degrades the answer (partial estimate with a
// widened confidence interval, or the verified prefix of a limit scan)
// instead of failing it; a request that cannot even start answers 429 with
// Retry-After and X-Tasti-Budget-* headers. See docs/RELIABILITY.md "Label
// budgets and degraded answers".
//
// -pprof-addr serves net/http/pprof on a second listener (keep it off
// public interfaces); -log-format selects text or JSON structured logs.
// SIGINT/SIGTERM drain in-flight queries before exiting. See
// docs/RELIABILITY.md for the fault-tolerance knobs and
// docs/OBSERVABILITY.md for the metric catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the -pprof-addr listener only
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/tasti"
)

func main() {
	var (
		dsName = flag.String("dataset", "night-street", "corpus: night-street, taipei, amsterdam, wikisql, common-voice")
		size   = flag.Int("size", 10000, "corpus size")
		seed   = flag.Int64("seed", 1, "generation and algorithm seed")
		train  = flag.Int("train", 600, "triplet-training label budget")
		reps   = flag.Int("reps", 900, "cluster representatives to annotate")
		addr   = flag.String("addr", ":8080", "listen address")
		par    = flag.Int("parallelism", 0, "worker count for index construction, propagation, and cracking (<= 0 uses all CPUs)")
		shards = flag.Int("shards", 1, "scatter-gather shard count; results are bitwise identical at every value (<= 1 serves one shard)")
		quantize = flag.Bool("quantize", false, "build the int8 quantized scan plane: 8x smaller candidate scans with exact rerank, bitwise-identical results")

		queryTimeout  = flag.Duration("query-timeout", 60*time.Second, "per-request budget for /query/ endpoints (0 disables)")
		labelTimeout  = flag.Duration("label-timeout", 0, "per-call target-labeler deadline (0 disables)")
		retries       = flag.Int("retries", 3, "labeler attempts per call, including the first (<= 1 disables retrying)")
		allowDegraded = flag.Bool("allow-degraded", false, "complete the index around permanently unlabelable records")
		faultRate     = flag.Float64("fault-rate", 0, "inject transient labeler faults at this per-attempt probability (chaos serving)")

		snapshotPath = flag.String("snapshot", "", "index snapshot file: loaded at startup if present, saved after a fresh build, hot-reloaded on POST /admin/reload or SIGHUP (empty disables)")

		walDir          = flag.String("wal-dir", "", "write-ahead-log directory: enables POST /ingest with fsync-before-ack durability and crash replay (empty disables)")
		walSegBytes     = flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size (<= 0 uses the 16 MiB default)")
		ingestQueue     = flag.Int("ingest-queue", 0, "pending ingest submissions before /ingest answers 429 (<= 0 uses the default)")
		ingestBatch     = flag.Int("ingest-batch", 0, "max records coalesced into one WAL frame and fsync (<= 0 uses the default)")
		ingestMaxBody   = flag.Int64("ingest-max-body", 0, "largest accepted /ingest body in bytes (<= 0 uses 8 MiB)")
		ingestTenantCap = flag.Int("ingest-tenant-pending", 0, "per-tenant in-flight record cap, keyed by X-Tasti-Tenant (<= 0 uses 4096)")
		driftWindow     = flag.Int("drift-window", 0, "appended records per drift-detector window (<= 0 uses 256)")
		driftThreshold  = flag.Float64("drift-threshold", 0, "windowed mean nearest-rep distance over baseline ratio that flags drift (<= 0 uses 1.5)")
		refreshBudget   = flag.Int("refresh-budget", 0, "worst-covered appended records re-cracked per refresh (<= 0 uses the default)")
		refreshAuto     = flag.Bool("refresh-auto", false, "start a background refresh automatically when drift trips")

		labelStorePath = flag.String("label-store", "", "cross-query label-store snapshot file: loaded at startup if present, flushed on -label-flush and at drain (empty keeps labels in memory only)")
		labelBudget    = flag.Int64("label-budget", 0, "global serve-path oracle-call budget across all tenants; exhaustion degrades queries and answers 429 (<= 0 = unlimited)")
		tenantBudget   = flag.Int64("tenant-budget", 0, "per-tenant serve-path oracle-call budget, keyed by X-Tasti-Tenant (<= 0 = unlimited)")
		labelFlush     = flag.Duration("label-flush", 30*time.Second, "background label-store flush period (0 disables the loop; the drain path still flushes)")
		labelInflight  = flag.Int("label-inflight", 0, "distinct records with an oracle call in flight before the label store answers 429 (<= 0 uses 1024)")

		traceSample    = flag.Float64("trace-sample", 0.01, "fraction of /query and /ingest requests whose full span tree is retained for GET /admin/traces (0 disables, 1 traces everything; never changes results)")
		traceRing      = flag.Int("trace-ring", 256, "sampled traces retained before the oldest is overwritten (<= 0 uses 256)")
		healthInterval = flag.Duration("health-interval", 15*time.Second, "index-health collector period feeding the shard-skew, radius, and WAL-lag gauges (0 disables the loop; GET /admin/status still collects on demand)")

		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("unknown -log-format", "format", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	opts := serverOptions{
		dataset:       *dsName,
		size:          *size,
		train:         *train,
		reps:          *reps,
		seed:          *seed,
		parallelism:   *par,
		shards:        *shards,
		quantize:      *quantize,
		queryTimeout:  *queryTimeout,
		labelTimeout:  *labelTimeout,
		allowDegraded: *allowDegraded,
		faultRate:     *faultRate,
		logger:        logger,
		snapshotPath:  *snapshotPath,

		walDir:              *walDir,
		walSegmentBytes:     *walSegBytes,
		ingestQueue:         *ingestQueue,
		ingestBatch:         *ingestBatch,
		ingestMaxBody:       *ingestMaxBody,
		ingestTenantPending: *ingestTenantCap,
		driftWindow:         *driftWindow,
		driftThreshold:      *driftThreshold,
		refreshBudget:       *refreshBudget,
		refreshAuto:         *refreshAuto,

		labelStorePath: *labelStorePath,
		labelBudget:    *labelBudget,
		tenantBudget:   *tenantBudget,
		labelFlush:     *labelFlush,
		labelInflight:  *labelInflight,

		traceSample:    *traceSample,
		traceRing:      *traceRing,
		healthInterval: *healthInterval,
	}
	if *retries > 1 {
		opts.retry = tasti.DefaultRetryPolicy(*seed)
		opts.retry.MaxAttempts = *retries
	}

	srv := newServerShell(opts)
	// Worker-pool utilization and snapshot save/load accounting flow into the
	// same registry /metrics renders.
	tasti.SetPoolTelemetry(srv.reg)
	tasti.SetSnapshotTelemetry(srv.reg)
	logger.Info("building index in the background", "dataset", *dsName, "records", *size)
	srv.buildAsync()
	srv.startHealthLoop()
	srv.startLabelFlushLoop()

	// SIGHUP hot-reloads the snapshot, the conventional re-read-your-config
	// signal. Failures are contained: the serving index stays.
	if *snapshotPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				logger.Info("SIGHUP: reloading index snapshot", "path", *snapshotPath)
				if err := srv.reload(context.Background()); err != nil {
					logger.Error("SIGHUP reload failed", "err", err.Error())
				}
			}
		}()
	}

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux, which only this listener serves — the query
		// listener uses its own mux, so profiling stays off the public port.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err.Error())
			}
		}()
	}

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      srv.handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 120 * time.Second,
	}

	// Drain in-flight queries on SIGINT/SIGTERM before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutting down, draining in-flight queries")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpServer.Shutdown(shutdownCtx)
	}()

	logger.Info("listening", "addr", *addr)
	if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "err", err.Error())
		os.Exit(1)
	}
	if err := <-done; err != nil {
		logger.Error("shutdown failed", "err", err.Error())
		os.Exit(1)
	}
	// With the listener stopped no new submissions can arrive; drain what the
	// ingest queue already acked into the index, then seal the WAL.
	srv.closeIngest()
	// Persist labels bought since the last periodic flush — the next boot
	// starts with every annotation this process paid for.
	srv.flushLabels()
	logger.Info("bye")
}
