// Command tastiserve builds a TASTI index over a synthetic corpus and serves
// queries over HTTP with a JSON API.
//
// Usage:
//
//	tastiserve -dataset night-street -size 10000 -addr :8080
//
// Endpoints:
//
//	GET  /healthz          liveness
//	GET  /index            index statistics
//	POST /query/aggregate  {"class":"car","err":0.05}
//	POST /query/select     {"class":"car","count":1,"budget":300,"recall":0.9}
//	POST /query/limit      {"class":"car","count":5,"k":10,"crack":true}
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	var (
		dsName = flag.String("dataset", "night-street", "corpus: night-street, taipei, amsterdam, wikisql, common-voice")
		size   = flag.Int("size", 10000, "corpus size")
		seed   = flag.Int64("seed", 1, "generation and algorithm seed")
		train  = flag.Int("train", 600, "triplet-training label budget")
		reps   = flag.Int("reps", 900, "cluster representatives to annotate")
		addr   = flag.String("addr", ":8080", "listen address")
		par    = flag.Int("parallelism", 0, "worker count for index construction, propagation, and cracking (<= 0 uses all CPUs)")
	)
	flag.Parse()

	start := time.Now()
	log.Printf("building index over %s (%d records)...", *dsName, *size)
	srv, err := newServer(*dsName, *size, *train, *reps, *seed, *par)
	if err != nil {
		log.Fatalf("tastiserve: %v", err)
	}
	log.Printf("index ready in %s (%d label calls); listening on %s",
		time.Since(start).Round(time.Millisecond), srv.index.Stats.TotalLabelCalls(), *addr)

	httpServer := &http.Server{
		Addr:         *addr,
		Handler:      srv.handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 120 * time.Second,
	}
	log.Fatal(httpServer.ListenAndServe())
}
