package main

// Cost-control plane tests: the cross-query label store amortizing oracle
// spend across requests, the 429 mapping for exhausted budgets and store
// saturation, graceful mid-query degradation, and a mixed-tenant chaos storm
// holding the ledger and budget conservation invariants. All TestBudget* so
// CI's dedicated `-race -run Budget` step covers them.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/tasti"
)

// TestBudget429Mapping drives queryError directly with the two backpressure
// errors and requires 429 + Retry-After + the tenant's budget position —
// never a 500, and the budget headers absent for unlimited scopes.
func TestBudget429Mapping(t *testing.T) {
	s := newServerShell(serverOptions{dataset: "night-street", labelBudget: 10, tenantBudget: 4})
	for _, err := range []error{
		fmt.Errorf("admission: %w", tasti.ErrBudgetExhausted),
		fmt.Errorf("store: %w", tasti.ErrLabelStoreSaturated),
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/query/aggregate", nil)
		req.Header.Set("X-Tasti-Tenant", "acme")
		s.queryError(rec, req, err)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("%v mapped to %d, want 429", err, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		if got := rec.Header().Get("X-Tasti-Budget-Remaining"); got != "4" {
			t.Errorf("tenant budget header = %q, want 4", got)
		}
		if got := rec.Header().Get("X-Tasti-Budget-Global-Remaining"); got != "10" {
			t.Errorf("global budget header = %q, want 10", got)
		}
	}

	// Unlimited scopes publish no headers: absence, not a sentinel.
	s = newServerShell(serverOptions{dataset: "night-street"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/query/limit", nil)
	s.queryError(rec, req, fmt.Errorf("admission: %w", tasti.ErrBudgetExhausted))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("X-Tasti-Budget-Remaining") != "" ||
		rec.Header().Get("X-Tasti-Budget-Global-Remaining") != "" {
		t.Error("unlimited budget published remaining headers")
	}

	// Non-budget errors keep their original mapping.
	rec = httptest.NewRecorder()
	s.queryError(rec, httptest.NewRequest(http.MethodPost, "/query/limit", nil), errors.New("boom"))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("generic error mapped to %d, want 500", rec.Code)
	}
}

// TestBudgetStoreAmortizesRepeatQueries runs the same aggregate query twice
// and requires the second run to spend zero new oracle calls — every sample
// answered by the store — while returning a bitwise-identical estimate.
func TestBudgetStoreAmortizesRepeatQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1000, train: 150, reps: 120, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	run := func() map[string]interface{} {
		resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
			strings.NewReader(`{"class":"car","err":0.1}`))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, body)
		}
		return body
	}
	first := run()
	misses := srv.reg.Counter("tasti_labelstore_misses_total").Value()
	hitsBefore := srv.reg.Counter("tasti_labelstore_hits_total").Value()
	second := run()
	if d := srv.reg.Counter("tasti_labelstore_misses_total").Value() - misses; d != 0 {
		t.Errorf("repeat query issued %d fresh oracle calls, want 0", d)
	}
	if srv.reg.Counter("tasti_labelstore_hits_total").Value() <= hitsBefore {
		t.Error("repeat query recorded no store hits")
	}
	if first["estimate"] != second["estimate"] || first["half_width"] != second["half_width"] {
		t.Errorf("store changed the answer: %v vs %v", first, second)
	}
	if first["degraded"] != false || second["degraded"] != false {
		t.Errorf("unlimited budget flagged degradation: %v / %v", first["degraded"], second["degraded"])
	}
}

// TestBudgetExhaustionDegradesServedQuery serves with a small global budget
// and requires mid-query exhaustion to surface as a 200 partial answer
// flagged degraded (or, if not even a minimal sample fit, a 429) — never a
// 500 — with the degradation counted in /metrics.
func TestBudgetExhaustionDegradesServedQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1000, train: 150, reps: 120, seed: 1,
		labelBudget: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.001}`))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	switch resp.StatusCode {
	case http.StatusOK:
		if body["degraded"] != true {
			t.Fatalf("exhausted budget served an undegraded answer: %v", body)
		}
		if srv.reg.Counter(`tasti_query_degraded_total{type="aggregate"}`).Value() == 0 {
			t.Error("degradation not counted")
		}
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	default:
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	if srv.reg.Counter(`tasti_budget_exhausted_total{scope="global"}`).Value() == 0 {
		t.Error("exhaustion not counted")
	}
}

// TestChaosBudgetMixedTenantStorm hammers one server with concurrent
// mixed-tenant, mixed-type queries against tight per-tenant budgets, then
// audits the books: every response is 200 or 429 (backpressure is never an
// error), the cost ledger conserves (per-tenant sums equal the global
// totals, and its labels reconcile with the query processors' own counter),
// budget spend never exceeds any cap, reservations minus refunds equal held
// spend, and the store survives a flush/reload round trip — no annotation
// half-written under the storm.
func TestChaosBudgetMixedTenantStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1000, train: 150, reps: 120, seed: 1,
		tenantBudget: 60, labelBudget: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	bodies := []string{
		`{"class":"car","err":0.05}`,
		`{"class":"car","count":1,"budget":120,"recall":0.9}`,
		`{"class":"car","count":4,"k":3}`,
	}
	routes := []string{"/query/aggregate", "/query/select", "/query/limit"}
	tenants := []string{"alpha", "beta", "gamma"}

	const workers = 9
	const perWorker = 4
	var wg sync.WaitGroup
	statuses := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := (w + i) % len(routes)
				req, err := http.NewRequest(http.MethodPost, ts.URL+routes[r], strings.NewReader(bodies[r]))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Tasti-Tenant", tenants[w%len(tenants)])
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				statuses[w] = append(statuses[w], resp.StatusCode)
			}
		}(w)
	}
	wg.Wait()

	for w, codes := range statuses {
		for _, code := range codes {
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				t.Fatalf("worker %d got status %d; backpressure must be 200-degraded or 429", w, code)
			}
		}
	}

	// Ledger conservation under concurrency, including reconciliation with
	// the query processors' own label counter.
	resp, err := http.Get(ts.URL + "/admin/ledger")
	if err != nil {
		t.Fatal(err)
	}
	var snap tasti.LedgerSnapshot
	func() {
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}()
	if snap.Conservation != "ok" {
		t.Fatalf("ledger conservation: %s", snap.Conservation)
	}
	rejected := false
	for _, e := range snap.Recent {
		if e.Status == http.StatusTooManyRequests {
			rejected = true
			if e.Hits > 0 && e.Labels == 0 {
				t.Errorf("429 entry books hits without labels: %+v", e)
			}
		}
	}

	// Budget books: spend within caps, and reservations minus refunds equal
	// the spend still held.
	spent := srv.budget.Spent()
	var total int64
	for tenant, n := range spent {
		if n > 60 {
			t.Errorf("tenant %q spent %d > cap 60", tenant, n)
		}
		total += n
	}
	if total > 150 {
		t.Errorf("global spend %d > cap 150", total)
	}
	reserved := srv.reg.Counter("tasti_budget_reservations_total").Value()
	refunded := srv.reg.Counter("tasti_budget_refunds_total").Value()
	if reserved-refunded != total {
		t.Errorf("reservations(%d) - refunds(%d) != held spend %d", reserved, refunded, total)
	}
	if !rejected && srv.reg.Counter(`tasti_budget_exhausted_total{scope="tenant"}`).Value() == 0 &&
		srv.reg.Counter(`tasti_budget_exhausted_total{scope="global"}`).Value() == 0 {
		t.Log("storm finished under budget; exhaustion path untested this run")
	}

	// The store survived the storm coherent: a snapshot round trip preserves
	// every annotation.
	var buf bytes.Buffer
	if err := srv.labels.Save(&buf); err != nil {
		t.Fatalf("store unsaveable after storm: %v", err)
	}
	reloaded, err := tasti.LoadLabelStore(bytes.NewReader(buf.Bytes()), tasti.LabelStoreOptions{})
	if err != nil {
		t.Fatalf("store snapshot corrupt after storm: %v", err)
	}
	if reloaded.Len() != srv.labels.Len() {
		t.Errorf("round trip lost annotations: %d != %d", reloaded.Len(), srv.labels.Len())
	}
}
