package main

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// metricLine is "name{labels} value" or "name value" — the shape every
// Prometheus text-format parser requires of non-comment lines.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestMetricsEndpoint drives real traffic through the server and checks
// that /metrics renders parseable Prometheus text carrying the build,
// request, breaker, and query-layer series.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts := testServer(t)

	// Generate traffic so request counters and latency histograms have
	// observations beyond the scrape itself.
	for _, path := range []string{"/healthz", "/index"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	// Every line is a comment or a well-formed sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed metric line %q", line)
		}
	}

	for _, want := range []string{
		// Build-phase walls and label accounting.
		"tasti_builds_total 1",
		`tasti_build_phase_seconds{phase="cluster"}`,
		`tasti_build_label_calls_total{phase="rep"}`,
		// Request instrumentation.
		`tasti_http_requests_total{route="/index",code="200"}`,
		`tasti_http_request_seconds_bucket{route="/query/aggregate",le="+Inf"}`,
		"tasti_http_in_flight 1", // the scrape itself is in flight
		// Serve-path breaker health.
		"tasti_breaker_state 0",
		"tasti_breaker_trips_total 0",
		// Query-layer spend.
		`tasti_query_runs_total{type="aggregate"} 1`,
		`tasti_query_label_calls_total{type="aggregate"}`,
		// Worker-pool utilization (SetPoolTelemetry is wired in main, not
		// the test server, so only the HELP-free families above are
		// mandatory here).
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// TYPE lines accompany every family we asserted on.
	for _, want := range []string{
		"# TYPE tasti_builds_total counter",
		"# TYPE tasti_build_phase_seconds gauge",
		"# TYPE tasti_http_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsMethodNotAllowed rejects writes to the scrape endpoint.
func TestMetricsMethodNotAllowed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}
