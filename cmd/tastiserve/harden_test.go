package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/tasti"
)

// TestServerNotReady: while the index is still building, liveness holds,
// readiness and queries are refused — the contract main relies on when it
// brings the listener up before the build finishes.
func TestServerNotReady(t *testing.T) {
	srv := newServerShell(serverOptions{dataset: "night-street", size: 100})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "building" {
		t.Errorf("readyz = %d %v", resp.StatusCode, body)
	}

	resp, err = http.Post(ts.URL+"/query/aggregate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query while building status = %d, want 503", resp.StatusCode)
	}
}

// TestServerReadyz: a built server reports ready and a closed labeler
// circuit.
func TestServerReadyz(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 400, train: 30, reps: 40, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", resp.StatusCode, body)
	}
	if body["breaker_state"] != "closed" {
		t.Errorf("breaker_state = %v, want closed", body["breaker_state"])
	}
	if body["degraded"] != false {
		t.Errorf("degraded = %v, want false", body["degraded"])
	}
}

// TestServerPanicRecovery: a panicking handler becomes a 500, not a dropped
// connection.
func TestServerPanicRecovery(t *testing.T) {
	srv := newServerShell(serverOptions{})
	h := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

// TestServerQueryTimeout: a query whose per-request budget has expired is
// refused instead of taking the index lock.
func TestServerQueryTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 400, train: 30, reps: 40, seed: 1,
		queryTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}

	// Non-query routes are exempt from the query budget.
	resp, err = http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/index status = %d, want 200", resp.StatusCode)
	}
}

// TestServerChaosServing: with transient labeler faults injected at 30% and
// retries on, the build and every query succeed, and the reliability
// counters surface the recovered faults.
func TestServerChaosServing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := serverOptions{
		dataset: "night-street", size: 400, train: 30, reps: 40, seed: 1,
		faultRate: 0.3,
	}
	opts.retry = tasti.DefaultRetryPolicy(1)
	opts.retry.BaseDelay = 0
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	agg := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate under faults = %d %v", resp.StatusCode, agg)
	}

	resp, err = http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	info := decodeBody(t, resp)
	if info["build_label_retries"].(float64) <= 0 {
		t.Errorf("build_label_retries = %v, want > 0 at 30%% fault rate", info["build_label_retries"])
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decodeBody(t, resp)
	if ready["status"] != "ready" || ready["breaker_state"] != "closed" {
		t.Errorf("readyz under faults = %v", ready)
	}
}
