package main

// Observability plane: request-scoped tracing, the per-tenant cost ledger,
// and index-health introspection. Everything here is record-only — nothing
// reads a trace, ledger entry, or health gauge back into query execution, so
// results stay bitwise identical whether or not a request is sampled. See
// docs/OBSERVABILITY.md for the trace/ledger schemas and the
// slow-query runbook.

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/tasti"
)

// reqScope rides the request context from the instrument middleware into the
// handlers: the trace ID (always assigned), the sampled span tree (nil for
// unsampled requests), and the cost tallies the middleware turns into a
// ledger entry when the response is written. Counters are atomics so a
// handler that parallelizes internally can meter without its own lock.
type reqScope struct {
	id string
	tr *tasti.Trace

	labels  atomic.Int64 // successful target-labeler calls
	hits    atomic.Int64 // labels spent on already-annotated records
	records atomic.Int64 // records propagated (queries) or appended (ingest)
	shards  atomic.Int64 // shards touched by the scatter
}

type scopeKeyType struct{}

var scopeKey scopeKeyType

func withScope(ctx context.Context, sc *reqScope) context.Context {
	return context.WithValue(ctx, scopeKey, sc)
}

// scopeFrom returns the request's scope, or nil when the handler runs
// outside the instrument middleware (direct handler tests). Every method
// below is nil-receiver-safe, so handlers never branch on it.
func scopeFrom(ctx context.Context) *reqScope {
	sc, _ := ctx.Value(scopeKey).(*reqScope)
	return sc
}

// rootSpan returns the request's root span, nil when untraced. Span methods
// are nil-safe, so callers thread the result without checking.
func (sc *reqScope) rootSpan() *tasti.Span {
	if sc == nil || sc.tr == nil {
		return nil
	}
	return sc.tr.Root()
}

// child opens a span under the request root, nil when untraced.
func (sc *reqScope) child(name string) *tasti.Span {
	if sc == nil || sc.tr == nil {
		return nil
	}
	return sc.tr.Root().Child(name)
}

func (sc *reqScope) traceID() string {
	if sc == nil {
		return ""
	}
	return sc.id
}

func (sc *reqScope) addLabel(hit bool) {
	if sc == nil {
		return
	}
	sc.labels.Add(1)
	if hit {
		sc.hits.Add(1)
	}
}

// setCost records the request's propagation footprint.
func (sc *reqScope) setCost(records, shards int64) {
	if sc == nil {
		return
	}
	sc.records.Store(records)
	sc.shards.Store(shards)
}

// meteringLabeler wraps the serve-path labeler chain so each request's
// ledger entry carries its own oracle spend. It counts exactly the
// successful Label calls — the same events every query processor counts
// into tasti_query_label_calls_total — so per-tenant ledger totals
// reconcile exactly with the global counters: a failed call increments
// neither. A hit is a label spent on a record the index had already
// annotated (cracked, or labeled by an earlier query) — spend an admission
// controller could avoid, which is what the ledger exists to expose.
type meteringLabeler struct {
	inner tasti.Labeler
	ix    *tasti.ShardedIndex
	st    *tasti.LabelStore
	sc    *reqScope
}

// meter wraps lab for one request. Called with the index semaphore held
// (Annotated reads shard state), like every query-path index access. st,
// when non-nil, extends hit detection to the cross-query label store, so a
// label served from an earlier query's spend books as a hit too.
func meter(lab tasti.Labeler, ix *tasti.ShardedIndex, st *tasti.LabelStore, sc *reqScope) tasti.Labeler {
	return &meteringLabeler{inner: lab, ix: ix, st: st, sc: sc}
}

func (m *meteringLabeler) Label(id int) (tasti.Annotation, error) {
	hit := m.ix.Annotated(id)
	if !hit && m.st != nil {
		_, hit = m.st.Get(id)
	}
	ann, err := m.inner.Label(id)
	if err != nil {
		return nil, err
	}
	m.sc.addLabel(hit)
	return ann, nil
}

func (m *meteringLabeler) Name() string          { return m.inner.Name() }
func (m *meteringLabeler) Cost() tasti.CostModel { return m.inner.Cost() }

// costKind maps a route to its ledger entry kind; other routes are free and
// get no entry.
func costKind(route string) (string, bool) {
	switch route {
	case "/query/aggregate":
		return "aggregate", true
	case "/query/select":
		return "select", true
	case "/query/limit":
		return "limit", true
	case "/ingest":
		return "ingest", true
	}
	return "", false
}

// labelStoreStatus is the /admin/status "label_store" section: the store's
// residency and dirtiness, the budget caps, and each admitted tenant's spend
// and remaining headroom (remaining omitted when per-tenant caps are off).
func (s *server) labelStoreStatus() map[string]interface{} {
	body := map[string]interface{}{
		"entries":       s.labels.Len(),
		"dirty":         s.labels.Dirty(),
		"global_budget": s.budget.GlobalCap(),
		"tenant_budget": s.budget.PerTenantCap(),
	}
	if s.budget.GlobalCap() > 0 {
		_, globalLeft := s.budget.Remaining("")
		body["global_remaining"] = globalLeft
	}
	spent := s.budget.Spent()
	if len(spent) > 0 {
		tenants := make(map[string]interface{}, len(spent))
		for tenant, used := range spent {
			t := map[string]interface{}{"spent": used}
			if s.budget.PerTenantCap() > 0 {
				left, _ := s.budget.Remaining(tenant)
				t["remaining"] = left
			}
			tenants[tenant] = t
		}
		body["tenants"] = tenants
	}
	return body
}

// handleTraces is GET /admin/traces: the retained sampled traces, oldest
// first, filterable by ?route=/query/aggregate and ?min_ms=50. Span trees
// are rendered at read time, so an ingest trace shows its apply span once
// the batch has been applied even though the ack (and the trace's push into
// the ring) happened first.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "bad min_ms: "+v)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	routeFilter := r.URL.Query().Get("route")
	all := s.traces.Snapshot()
	out := make([]tasti.TraceEntry, 0, len(all))
	for _, e := range all {
		if routeFilter != "" && e.Route != routeFilter {
			continue
		}
		if e.DurationNS < int64(minDur) {
			continue
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"sample_rate": s.sampler.Rate(),
		"capacity":    s.traces.Capacity(),
		"retained":    s.traces.Len(),
		"count":       len(out),
		"traces":      out,
	})
}

// handleLedger is GET /admin/ledger: global totals, per-tenant rollups
// (largest label spend first), the recent-request ring, and the
// conservation verdict — per-tenant sums must equal the global totals.
func (s *server) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.ledger.Snapshot())
}

// healthSnapshot is one index-health collection: shard balance, proxy-score
// radius quantiles, drift, and WAL replay debt. Published as gauges by the
// collector loop and inlined into /admin/status and /readyz.
type healthSnapshot struct {
	At         time.Time    `json:"collected_at"`
	Records    int          `json:"records"`
	Reps       int          `json:"representatives"`
	Shards     int          `json:"shards"`
	RecordSkew float64      `json:"record_skew"`
	RepSkew    float64      `json:"rep_skew"`
	RadiusP50  float64      `json:"radius_p50"`
	RadiusP90  float64      `json:"radius_p90"`
	RadiusP99  float64      `json:"radius_p99"`
	Memory     memoryHealth `json:"memory"`
	Drift      *driftHealth `json:"drift,omitempty"`
	WAL        *walHealth   `json:"wal,omitempty"`
}

// memoryHealth reports the resident scan-plane memory: the float64 embedding
// matrix, the uint8 quantized code plane (zero without -quantize), how much
// smaller the plane the candidate scans stream is, and the live rerank rate —
// the fraction of code-plane candidates whose pruning bound could not exclude
// them, so they were recomputed exactly against the float rows.
type memoryHealth struct {
	Quantized        bool    `json:"quantized"`
	FloatBytes       int64   `json:"embedding_float_bytes"`
	QuantBytes       int64   `json:"embedding_quant_bytes"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	RerankRate       float64 `json:"quant_rerank_rate,omitempty"`
}

type driftHealth struct {
	Ratio     float64 `json:"ratio"`
	Baseline  float64 `json:"baseline"`
	Triggered bool    `json:"triggered"`
}

// walHealth is the WAL's replay debt: what a crash right now would cost the
// next boot. LagRecords counts records retained in live segments
// (NextRecord - FirstRecord); a refresh persists the snapshot and truncates
// covered segments, driving all three toward zero.
type walHealth struct {
	Segments    int   `json:"segments"`
	Bytes       int64 `json:"bytes"`
	FirstRecord int   `json:"first_record"`
	NextRecord  int   `json:"next_record"`
	LagRecords  int   `json:"lag_records"`
	QueueDepth  int   `json:"queue_depth"`
}

// collectHealth takes one health snapshot: index shape under the semaphore
// (skew and radius walk shard tables, which cracking mutates), drift and WAL
// from their own synchronized state. The snapshot is stored for /readyz and
// its numbers published as gauges.
func (s *server) collectHealth(ctx context.Context) (*healthSnapshot, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	ix := s.index.Load()
	qs := ix.RadiusQuantiles([]float64{0.5, 0.9, 0.99})
	h := &healthSnapshot{
		At:         time.Now(),
		Records:    ix.NumRecords(),
		Reps:       ix.RepCount(),
		Shards:     ix.NumShards(),
		RecordSkew: ix.RecordSkew(),
		RepSkew:    ix.RepSkew(),
		RadiusP50:  qs[0],
		RadiusP90:  qs[1],
		RadiusP99:  qs[2],
	}
	mem := ix.MemoryStats()
	h.Memory = memoryHealth{
		Quantized:        mem.Quantized(),
		FloatBytes:       mem.FloatBytes,
		QuantBytes:       mem.QuantBytes,
		CompressionRatio: mem.CompressionRatio(),
	}
	s.release()
	if cands := s.reg.Counter("tasti_quant_candidates_total").Value(); cands > 0 {
		h.Memory.RerankRate = float64(s.reg.Counter("tasti_quant_rerank_total").Value()) / float64(cands)
	}

	if s.drift != nil {
		h.Drift = &driftHealth{
			Ratio:     s.drift.Ratio(),
			Baseline:  s.drift.Baseline(),
			Triggered: s.drift.Triggered(),
		}
	}
	if s.wal != nil {
		st, err := s.wal.Stat()
		if err != nil {
			s.log.Warn("WAL stat failed during health collection", "err", err.Error())
		} else {
			h.WAL = &walHealth{
				Segments:    st.Segments,
				Bytes:       st.Bytes,
				FirstRecord: st.FirstRecord,
				NextRecord:  st.NextID,
				LagRecords:  st.NextID - st.FirstRecord,
				QueueDepth:  s.ingester.Pending(),
			}
		}
	}

	s.reg.Gauge("tasti_shard_record_skew").Set(h.RecordSkew)
	s.reg.Gauge("tasti_shard_rep_skew").Set(h.RepSkew)
	s.reg.Gauge(`tasti_scan_plane_bytes{plane="float"}`).Set(float64(h.Memory.FloatBytes))
	s.reg.Gauge(`tasti_scan_plane_bytes{plane="quant"}`).Set(float64(h.Memory.QuantBytes))
	s.reg.Gauge(`tasti_index_radius{quantile="p50"}`).Set(h.RadiusP50)
	s.reg.Gauge(`tasti_index_radius{quantile="p90"}`).Set(h.RadiusP90)
	s.reg.Gauge(`tasti_index_radius{quantile="p99"}`).Set(h.RadiusP99)
	if h.WAL != nil {
		s.reg.Gauge("tasti_wal_lag_records").Set(float64(h.WAL.LagRecords))
		s.reg.Gauge("tasti_wal_lag_segments").Set(float64(h.WAL.Segments))
		s.reg.Gauge("tasti_wal_lag_bytes").Set(float64(h.WAL.Bytes))
	}
	s.health.Store(h)
	return h, nil
}

// healthLoop runs the collector every opts.healthInterval. It skips while
// the index is still building and bounds each collection by the interval so
// a wedged semaphore cannot pile up waiters. Runs for the process lifetime.
func (s *server) healthLoop() {
	interval := s.opts.healthInterval
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if !s.ready.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		_, err := s.collectHealth(ctx)
		cancel()
		if err != nil {
			s.log.Warn("index-health collection failed", "err", err.Error())
		}
	}
}

// startHealthLoop launches the collector when -health-interval is positive.
// GET /admin/status collects on demand either way.
func (s *server) startHealthLoop() {
	if s.opts.healthInterval > 0 {
		go s.healthLoop()
	}
}

// handleStatus is GET /admin/status: one JSON snapshot of the server's
// identity, tracing/ledger state, and index health — collected fresh, so an
// operator gets current numbers even with the background loop disabled.
// Always 200: while the index builds it reports status "building" (or
// "build failed" with the error) so the endpoint is usable before /readyz.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	body := map[string]interface{}{
		"status":            "ready",
		"dataset":           s.name,
		"version":           tasti.Version,
		"go":                runtime.Version(),
		"kernel":            tasti.KernelName(),
		"uptime_seconds":    time.Since(s.started).Seconds(),
		"trace_sample_rate": s.sampler.Rate(),
		"traces_retained":   s.traces.Len(),
		"trace_ring_cap":    s.traces.Capacity(),
		"ledger":            s.ledger.Global(),
		"label_store":       s.labelStoreStatus(),
	}
	if !s.ready.Load() {
		body["status"] = "building"
		if err, ok := s.buildErr.Load().(string); ok {
			body["status"] = "build failed"
			body["error"] = err
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	body["breaker_state"] = s.breaker.State().String()
	h, err := s.collectHealth(r.Context())
	if err != nil {
		// A canceled collection falls back to the loop's last snapshot.
		body["health_stale"] = true
		h = s.health.Load()
	}
	if h != nil {
		body["health"] = h
	}
	writeJSON(w, http.StatusOK, body)
}
