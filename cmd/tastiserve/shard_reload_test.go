package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// shardedServer builds a 2-shard server whose sharded snapshot lives in a
// temp file, plus the httptest listener in front of it.
func shardedServer(t *testing.T) (*server, *httptest.Server, string) {
	t.Helper()
	snap := filepath.Join(t.TempDir(), "index.snap")
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1500, train: 250, reps: 200, seed: 1,
		snapshotPath: snap, shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("fresh sharded build did not save the snapshot: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, snap
}

// TestChaosShardReloadUnderLoad is the per-shard zero-downtime acceptance
// check: while query traffic runs flat out against a 2-shard index, repeated
// POST /admin/reload?shard=1 swaps must never fail a request — every query
// answers 200, every shard reload answers 200 (or 409 when it collides with
// a whole-index reload guard).
func TestChaosShardReloadUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts, _ := shardedServer(t)

	const clients, iters = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*2+iters)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
					strings.NewReader(`{"class":"car","err":0.5}`))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query during shard reload: status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(ts.URL+"/admin/reload?shard=1", "application/json", nil)
			if err != nil {
				errs <- err
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				errs <- fmt.Errorf("shard reload: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if srv.reg.Counter(`tasti_shard_reload_total{shard="1",outcome="ok"}`).Value() == 0 {
		t.Error("no successful shard reload recorded")
	}
	if got := srv.reg.Counter(`tasti_shard_reload_total{shard="1",outcome="error"}`).Value(); got != 0 {
		t.Errorf("%d shard reload failures under a healthy snapshot", got)
	}
	ix := srv.index.Load()
	if ix.NumShards() != 2 {
		t.Fatalf("serving index has %d shards, want 2", ix.NumShards())
	}
	for i := 0; i < ix.NumShards(); i++ {
		if err := ix.Shard(i).Validate(); err != nil {
			t.Errorf("shard %d invalid after reload storm: %v", i, err)
		}
	}
}

// TestServeShardedEndpoints pins the sharded serving surface: /index reports
// the shard count, /metrics exports the per-shard series, a bad shard number
// answers 400, and a restart from the sharded snapshot restores the layout.
func TestServeShardedEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts, snap := shardedServer(t)

	resp, err := http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if got, ok := body["shards"].(float64); !ok || got != 2 {
		t.Errorf("/index shards = %v, want 2", body["shards"])
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`tasti_shard_records{shard="0"}`,
		`tasti_shard_records{shard="1"}`,
		`tasti_shard_reps{shard="0"}`,
		`tasti_vecmath_kernel{kernel=`,
	} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	resp, err = http.Post(ts.URL+"/admin/reload?shard=notanumber", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reload with a garbage shard number: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/reload?shard=7", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("reload of an out-of-range shard answered 200")
	}

	// A restart pointed at the sharded snapshot restores the same layout —
	// the snapshot's shard count wins even when the flag disagrees.
	restarted, err := newServer(serverOptions{
		dataset: "night-street", size: 1500, train: 250, reps: 200, seed: 1,
		snapshotPath: snap, shards: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := restarted.index.Load().NumShards(); got != 2 {
		t.Errorf("restart from a 2-shard snapshot serves %d shards, want 2", got)
	}
}
