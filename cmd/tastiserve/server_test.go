package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1500, train: 250, reps: 200, seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

func decodeBody(t *testing.T, resp *http.Response) map[string]interface{} {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestServerEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts := testServer(t)

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); body["status"] != "ok" {
		t.Errorf("health = %v", body)
	}

	// Index stats.
	resp, err = http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody(t, resp)
	if stats["records"].(float64) != 1500 {
		t.Errorf("records = %v", stats["records"])
	}
	if stats["representatives"].(float64) != 200 {
		t.Errorf("reps = %v", stats["representatives"])
	}

	// Aggregate.
	resp, err = http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	agg := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status %d: %v", resp.StatusCode, agg)
	}
	if agg["estimate"].(float64) < 0 || agg["label_calls"].(float64) <= 0 {
		t.Errorf("aggregate = %v", agg)
	}

	// Select.
	resp, err = http.Post(ts.URL+"/query/select", "application/json",
		strings.NewReader(`{"class":"car","count":1,"budget":100,"recall":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	sel := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d: %v", resp.StatusCode, sel)
	}
	if sel["returned"].(float64) <= 0 {
		t.Errorf("select = %v", sel)
	}

	// Limit with cracking.
	resp, err = http.Post(ts.URL+"/query/limit", "application/json",
		strings.NewReader(`{"class":"car","count":3,"k":5,"crack":true}`))
	if err != nil {
		t.Fatal(err)
	}
	lim := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit status %d: %v", resp.StatusCode, lim)
	}
	if lim["label_calls"].(float64) <= 0 {
		t.Errorf("limit = %v", lim)
	}

	// Cracking grew the index.
	resp, err = http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	stats2 := decodeBody(t, resp)
	if stats2["representatives"].(float64) < stats["representatives"].(float64) {
		t.Error("representatives shrank after cracking")
	}
}

func TestServerErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts := testServer(t)

	// Wrong method.
	resp, err := http.Get(ts.URL + "/query/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET aggregate status = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/index", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST index status = %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(ts.URL+"/query/aggregate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d", resp.StatusCode)
	}
}
