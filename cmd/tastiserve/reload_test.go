package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// reloadServer builds a server whose index lives in a snapshot file, plus
// the httptest listener in front of it.
func reloadServer(t *testing.T) (*server, *httptest.Server, string) {
	t.Helper()
	snap := filepath.Join(t.TempDir(), "index.snap")
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 1500, train: 250, reps: 200, seed: 1,
		snapshotPath: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("fresh build did not save the snapshot: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, snap
}

// TestChaosServeHotReloadUnderLoad is the zero-downtime acceptance check:
// while query traffic runs flat out, repeated /admin/reload swaps must never
// fail a request — every query answers 200, every reload answers 200 (or 409
// when two collide).
func TestChaosServeHotReloadUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts, _ := reloadServer(t)

	const clients, iters = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters*2+iters)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
					strings.NewReader(`{"class":"car","err":0.5}`))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query during reload: status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				errs <- err
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				errs <- fmt.Errorf("reload: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.reg.Counter(`tasti_snapshot_reload_total{outcome="ok"}`).Value() == 0 {
		t.Error("no successful reload recorded")
	}
	if srv.reg.Counter("tasti_snapshot_reload_failures_total").Value() != 0 {
		t.Error("reload failures recorded under healthy snapshot")
	}
}

// TestServeReloadCorruptSnapshotKeepsServing pins corruption containment on
// the serving path: a reload pointed at a corrupted snapshot must fail with
// a 502, increment the failure counter, and leave the previous index
// answering queries — and a repaired snapshot must reload afterwards,
// restoring the pre-crack representative set.
func TestServeReloadCorruptSnapshotKeepsServing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts, snap := reloadServer(t)
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Crack the serving index so it drifts from the snapshot: a later reload
	// observably rolls the representative set back.
	resp, err := http.Post(ts.URL+"/query/limit", "application/json",
		strings.NewReader(`{"class":"car","count":3,"k":2,"crack":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	repsNow := srv.index.Load().RepCount()

	// Corrupt the snapshot mid-file and try to reload it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(snap, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("reload of corrupt snapshot: status %d, body %v", resp.StatusCode, body)
	}
	if srv.reg.Counter("tasti_snapshot_reload_failures_total").Value() != 1 {
		t.Errorf("reload failures = %d, want 1",
			srv.reg.Counter("tasti_snapshot_reload_failures_total").Value())
	}
	// The cracked index must still be serving, untouched.
	if got := srv.index.Load().RepCount(); got != repsNow {
		t.Errorf("failed reload changed the serving index: %d reps, want %d", got, repsNow)
	}
	resp, err = http.Post(ts.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after failed reload: status %d", resp.StatusCode)
	}

	// Repair the snapshot; the reload must now succeed and roll back the
	// cracked representatives to the snapshot's 200.
	if err := os.WriteFile(snap, good, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body = decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload of repaired snapshot: status %d, body %v", resp.StatusCode, body)
	}
	if got := srv.index.Load().RepCount(); got != 200 {
		t.Errorf("reloaded index has %d reps, want the snapshot's 200", got)
	}
}

// TestServeStartupLoadsSnapshot pins the crash-recovery path: a second
// server pointed at the first one's snapshot serves without re-spending any
// labeling budget, and its index matches the snapshot.
func TestServeStartupLoadsSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, _, snap := reloadServer(t)
	want := srv.index.Load()

	restarted, err := newServer(serverOptions{
		dataset: "night-street", size: 1500, train: 250, reps: 200, seed: 1,
		snapshotPath: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := restarted.index.Load()
	if got.NumRecords() != want.NumRecords() {
		t.Fatalf("restored index has %d records, want %d", got.NumRecords(), want.NumRecords())
	}
	gotReps, wantReps := got.Shard(0).Table.Reps, want.Shard(0).Table.Reps
	if len(gotReps) != len(wantReps) {
		t.Fatalf("restored index has %d reps, want %d", len(gotReps), len(wantReps))
	}
	for i, rep := range wantReps {
		if gotReps[i] != rep {
			t.Fatalf("restored rep[%d] = %d, want %d", i, gotReps[i], rep)
		}
	}
}

// TestServeReloadRejectsWrongSnapshot: a snapshot of a different corpus must
// be rejected at reload time, not served.
func TestServeReloadRejectsWrongSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts, snap := reloadServer(t)

	// An index over a differently-sized corpus, bytes-valid but semantically
	// wrong for this server.
	other, err := newServer(serverOptions{
		dataset: "night-street", size: 900, train: 50, reps: 50, seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := other.index.Load().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("reload of mismatched snapshot: status %d, body %v", resp.StatusCode, body)
	}
	if got := srv.index.Load().NumRecords(); got != 1500 {
		t.Errorf("serving index now has %d records, want the original 1500", got)
	}
}
