package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/tasti"
)

// walServerOptions returns a small corpus configuration with streaming
// ingest enabled; mutate applies test-specific overrides before the build.
func walServerOptions(t *testing.T, mutate func(*serverOptions)) serverOptions {
	t.Helper()
	opts := serverOptions{
		dataset: "night-street", size: 900, train: 150, reps: 120, seed: 1,
		walDir: filepath.Join(t.TempDir(), "wal"),
	}
	if mutate != nil {
		mutate(&opts)
	}
	return opts
}

func walServer(t *testing.T, mutate func(*serverOptions)) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(walServerOptions(t, mutate))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.closeIngest)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// ingestPayload pulls n records from a differently-seeded corpus so the
// appended features are valid but novel, and wraps their ground truth in the
// wire envelope.
func ingestPayload(t *testing.T, src *tasti.Dataset, lo, n int) []byte {
	t.Helper()
	recs := make([]ingestRecord, n)
	for i := 0; i < n; i++ {
		env, err := tasti.AnnotationEnvelopeOf(src.Truth[lo+i])
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = ingestRecord{Features: src.Records[lo+i].Features, Annotation: env}
	}
	data, err := json.Marshal(ingestRequest{Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postIngest(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// indexRecords polls /index until the serving record count reaches want —
// applyIngest makes acked records queryable asynchronously after the WAL
// fsync, so a freshly acked batch may lag the response by a beat.
func waitForRecords(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last float64
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/index")
		if err != nil {
			t.Fatal(err)
		}
		stats := decodeBody(t, resp)
		if last = stats["records"].(float64); int(last) == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("index serves %d records, want %d", int(last), want)
}

func TestIngestDisabledWithoutWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"records":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("ingest without -wal-dir: status %d, want 501", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/admin/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("refresh without -wal-dir: status %d, want 501", resp.StatusCode)
	}
}

// TestIngestRejections pins the request-validation status codes: the
// durability path must refuse anything it could not faithfully replay.
func TestIngestRejections(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts := walServer(t, func(o *serverOptions) {
		o.ingestMaxBody = 8192
		o.ingestTenantPending = 4
	})
	extra, err := tasti.GenerateDataset("night-street", 64, 99)
	if err != nil {
		t.Fatal(err)
	}

	get, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d, want 405", get.StatusCode)
	}

	badBodies := map[string]string{
		"malformed JSON": `{"records":`,
		"no records":     `{"records":[]}`,
		"wrong dim":      `{"records":[{"features":[1,2,3],"annotation":{"kind":"video","video":{}}}]}`,
		"wrong kind": string(func() []byte {
			rec := ingestRecord{Features: extra.Records[0].Features}
			env, _ := tasti.AnnotationEnvelopeOf(tasti.TextAnnotation{Operator: "SELECT"})
			rec.Annotation = env
			b, _ := json.Marshal(ingestRequest{Records: []ingestRecord{rec}})
			return b
		}()),
		"empty envelope": string(func() []byte {
			b, _ := json.Marshal(ingestRequest{Records: []ingestRecord{{Features: extra.Records[0].Features}}})
			return b
		}()),
	}
	for name, body := range badBodies {
		resp := postIngest(t, ts.URL, []byte(body))
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// A batch bigger than -ingest-max-body answers 413.
	big := ingestPayload(t, extra, 0, 16)
	if len(big) <= 8192 {
		t.Fatalf("oversize payload is only %d bytes", len(big))
	}
	resp := postIngest(t, ts.URL, big)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413", resp.StatusCode)
	}

	// A single batch over the per-tenant pending cap answers 429 with a
	// Retry-After hint; a small batch from the same tenant still lands.
	over := ingestPayload(t, extra, 0, 5)
	if len(over) > 8192 {
		t.Fatalf("tenant-cap payload tripped the body limit first (%d bytes)", len(over))
	}
	resp = postIngest(t, ts.URL, over)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over tenant cap: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp = postIngest(t, ts.URL, ingestPayload(t, extra, 0, 2))
	ok := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid batch after rejections: status %d: %v", resp.StatusCode, ok)
	}
	if int(ok["base"].(float64)) != srv.opts.size || int(ok["count"].(float64)) != 2 {
		t.Errorf("ack = %v, want base %d count 2", ok, srv.opts.size)
	}
	waitForRecords(t, ts.URL, srv.opts.size+2)
}

// TestIngestSurvivesRestart is the durability acceptance test: every acked
// record must still be served after the process goes away and a new one
// boots over the same WAL directory and snapshot.
func TestIngestSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := walServerOptions(t, func(o *serverOptions) {
		o.snapshotPath = filepath.Join(t.TempDir(), "index.snap")
	})
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	extra, err := tasti.GenerateDataset("night-street", 64, 99)
	if err != nil {
		t.Fatal(err)
	}

	const appended = 40
	for lo := 0; lo < appended; lo += 10 {
		resp := postIngest(t, ts.URL, ingestPayload(t, extra, lo, 10))
		body := decodeBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d: %v", resp.StatusCode, body)
		}
		if int(body["base"].(float64)) != opts.size+lo {
			t.Fatalf("batch at %d acked base %v", lo, body["base"])
		}
	}
	waitForRecords(t, ts.URL, opts.size+appended)

	// Simulate the process dying after the last ack: stop the listener,
	// seal the WAL, and boot a fresh server over the same directories.
	ts.Close()
	srv.closeIngest()
	srv2, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.closeIngest)
	ts2 := httptest.NewServer(srv2.handler())
	t.Cleanup(ts2.Close)

	waitForRecords(t, ts2.URL, opts.size+appended)
	resp, err := http.Post(ts2.URL+"/query/aggregate", "application/json",
		strings.NewReader(`{"class":"car","err":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	agg := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after restart: status %d: %v", resp.StatusCode, agg)
	}

	// The replayed index must be able to keep ingesting where the WAL left
	// off — record IDs continue, no fork.
	resp = postIngest(t, ts2.URL, ingestPayload(t, extra, appended, 5))
	ack := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after restart: status %d: %v", resp.StatusCode, ack)
	}
	if int(ack["base"].(float64)) != opts.size+appended {
		t.Errorf("post-restart ack base = %v, want %d", ack["base"], opts.size+appended)
	}
}

// TestAdminRefreshPersistsAndTruncates drives the full drift lifecycle by
// hand: ingest, force a refresh, and check the re-crack grew the index, the
// snapshot pair was saved, covered WAL segments were removed, and a restart
// boots from the snapshot without replaying.
func TestAdminRefreshPersistsAndTruncates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := walServerOptions(t, func(o *serverOptions) {
		o.snapshotPath = filepath.Join(t.TempDir(), "index.snap")
		o.refreshBudget = 8
	})
	srv, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	extra, err := tasti.GenerateDataset("night-street", 80, 99)
	if err != nil {
		t.Fatal(err)
	}

	const appended = 60
	resp := postIngest(t, ts.URL, ingestPayload(t, extra, 0, appended))
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %v", resp.StatusCode, body)
	}
	waitForRecords(t, ts.URL, opts.size+appended)
	statsResp, err := http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	repsBefore := decodeBody(t, statsResp)["representatives"].(float64)

	resp, err = http.Post(ts.URL+"/admin/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh: status %d: %v", resp.StatusCode, ref)
	}
	if ref["cracked"].(float64) <= 0 {
		t.Errorf("refresh cracked %v records, want > 0", ref["cracked"])
	}
	if ref["snapshot_saved"] != true {
		t.Errorf("refresh did not save the snapshot: %v", ref)
	}
	statsResp, err = http.Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	if repsAfter := decodeBody(t, statsResp)["representatives"].(float64); repsAfter <= repsBefore {
		t.Errorf("representatives %v after refresh, %v before; re-crack added none", repsAfter, repsBefore)
	}

	// Snapshot coverage reclaimed the appended records' WAL segments: only
	// the active (post-truncation) segment may remain.
	segs, err := filepath.Glob(filepath.Join(opts.walDir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("WAL holds %d segments after refresh, want 1 (active): %v", len(segs), segs)
	}

	// Reboot: the snapshot pair alone must reproduce the extended corpus.
	ts.Close()
	srv.closeIngest()
	srv2, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.closeIngest)
	ts2 := httptest.NewServer(srv2.handler())
	t.Cleanup(ts2.Close)
	waitForRecords(t, ts2.URL, opts.size+appended)
	resp, err = http.Post(ts2.URL+"/query/limit", "application/json",
		strings.NewReader(`{"class":"car","count":3,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	lim := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after snapshot reboot: status %d: %v", resp.StatusCode, lim)
	}
}

// TestChaosIngestRefreshSwapUnderLoad is the zero-downtime acceptance check
// for online refresh: while query traffic runs flat out and records stream
// in, repeated /admin/refresh hot-swaps must never fail a single query.
func TestChaosIngestRefreshSwapUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts := walServer(t, func(o *serverOptions) {
		o.snapshotPath = filepath.Join(t.TempDir(), "index.snap")
		o.refreshBudget = 4
	})
	extra, err := tasti.GenerateDataset("night-street", 256, 99)
	if err != nil {
		t.Fatal(err)
	}

	const clients, iters, refreshes = 4, 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters+iters+refreshes)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Post(ts.URL+"/query/aggregate", "application/json",
					strings.NewReader(`{"class":"car","err":0.5}`))
				if err != nil {
					errs <- err
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query during ingest+refresh: status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(ts.URL+"/ingest", "application/json",
				bytes.NewReader(ingestPayload(t, extra, i*8, 8)))
			if err != nil {
				errs <- err
				continue
			}
			resp.Body.Close()
			// 429 under deliberate overload is the designed backpressure
			// answer, not a failure.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("ingest under load: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			resp, err := http.Post(ts.URL+"/admin/refresh", "application/json", nil)
			if err != nil {
				errs <- err
				continue
			}
			resp.Body.Close()
			// 409 marks two refreshes colliding; the loser's index serves on.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				errs <- fmt.Errorf("refresh under load: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
