package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/tasti"
)

var traceIDPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

// tracesResponse mirrors the GET /admin/traces payload.
type tracesResponse struct {
	SampleRate float64            `json:"sample_rate"`
	Capacity   int                `json:"capacity"`
	Retained   int                `json:"retained"`
	Count      int                `json:"count"`
	Traces     []tasti.TraceEntry `json:"traces"`
}

func getTraces(t *testing.T, url, query string) tracesResponse {
	t.Helper()
	resp, err := http.Get(url + "/admin/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/traces status = %d", resp.StatusCode)
	}
	var out tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func childSpan(sp tasti.SpanSnapshot, name string) *tasti.SpanSnapshot {
	for i := range sp.Children {
		if sp.Children[i].Name == name {
			return &sp.Children[i]
		}
	}
	return nil
}

func postQuery(t *testing.T, url, kind, body, tenant string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query/"+kind, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tasti-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query/%s status = %d: %s", kind, resp.StatusCode, raw)
	}
	return raw
}

// TestTracesAndLogCorrelation drives one query of each type through a
// trace-everything server and checks the full observability contract: the
// span tree shape per query type, one shard child per shard under the
// scatter spans, the ring filters, and the trace ID correlated into the
// structured request log.
func TestTracesAndLogCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var logBuf syncBuffer
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 600, train: 120, reps: 100, seed: 1,
		shards: 2, traceSample: 1,
		logger: newJSONLogger(&logBuf),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	postQuery(t, ts.URL, "aggregate", `{"class":"car","err":0.2}`, "")
	postQuery(t, ts.URL, "select", `{"class":"car","count":1,"budget":80,"recall":0.9}`, "")
	postQuery(t, ts.URL, "limit", `{"class":"car","count":3,"k":5}`, "")

	all := getTraces(t, ts.URL, "")
	if all.SampleRate != 1 || all.Count != 3 {
		t.Fatalf("traces: sample_rate=%v count=%d, want 1 and 3", all.SampleRate, all.Count)
	}
	wantShape := map[string][]string{
		"/query/aggregate": {"propagate", "estimate"},
		"/query/select":    {"propagate", "sample"},
		"/query/limit":     {"propagate", "order", "scan"},
	}
	seen := map[string]bool{}
	for _, e := range all.Traces {
		if !traceIDPattern.MatchString(e.TraceID) {
			t.Errorf("trace %s has malformed id %q", e.Route, e.TraceID)
		}
		if e.DurationNS <= 0 {
			t.Errorf("trace %s has duration %d", e.Route, e.DurationNS)
		}
		stages, ok := wantShape[e.Route]
		if !ok {
			t.Errorf("unexpected trace route %q", e.Route)
			continue
		}
		seen[e.Route] = true
		for _, stage := range stages {
			sp := childSpan(e.Root, stage)
			if sp == nil {
				t.Errorf("%s trace missing %q span (have %v)", e.Route, stage, spanNames(e.Root))
			}
		}
		// The scatter stages carry one child per shard.
		for _, scattered := range []string{"propagate", "order"} {
			sp := childSpan(e.Root, scattered)
			if sp == nil {
				continue
			}
			if len(sp.Children) != 2 {
				t.Errorf("%s %s span has %d children, want one per shard (2)", e.Route, scattered, len(sp.Children))
			}
			// Children land in completion order; check the set, not positions.
			have := map[string]bool{}
			for _, c := range sp.Children {
				have[c.Name] = true
			}
			for i := 0; i < 2; i++ {
				if want := fmt.Sprintf("shard/%d", i); !have[want] {
					t.Errorf("%s %s span missing child %q (have %v)", e.Route, scattered, want, spanNames(*sp))
				}
			}
		}
	}
	for route := range wantShape {
		if !seen[route] {
			t.Errorf("no trace retained for %s", route)
		}
	}

	// Filters: by route, and by a latency floor nothing reaches.
	byRoute := getTraces(t, ts.URL, "?route=/query/aggregate")
	if byRoute.Count != 1 || byRoute.Traces[0].Route != "/query/aggregate" {
		t.Errorf("route filter returned %d traces (%+v)", byRoute.Count, byRoute.Traces)
	}
	if slow := getTraces(t, ts.URL, "?min_ms=3600000"); slow.Count != 0 {
		t.Errorf("min_ms filter returned %d traces, want 0", slow.Count)
	}
	if resp, err := http.Get(ts.URL + "/admin/traces?min_ms=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad min_ms status = %d, want 400", resp.StatusCode)
		}
	}

	// Every query's JSON log line carries the trace ID of its retained trace.
	logIDs := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec struct {
			Msg     string `json:"msg"`
			Route   string `json:"route"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec.Msg != "request" || !strings.HasPrefix(rec.Route, "/query/") {
			continue
		}
		if !traceIDPattern.MatchString(rec.TraceID) {
			t.Errorf("log line for %s has malformed trace_id %q", rec.Route, rec.TraceID)
		}
		logIDs[rec.TraceID] = true
	}
	for _, e := range all.Traces {
		if !logIDs[e.TraceID] {
			t.Errorf("trace %s (%s) has no matching request log line", e.TraceID, e.Route)
		}
	}
}

func spanNames(sp tasti.SpanSnapshot) []string {
	names := make([]string, len(sp.Children))
	for i, c := range sp.Children {
		names[i] = c.Name
	}
	return names
}

func newJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// syncBuffer guards a bytes.Buffer: slog handlers serialize their own
// writes, but the test reads while the server may still log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLedgerReconciliation fires concurrent mixed queries from three
// tenants and audits the books: per-tenant totals must sum exactly to the
// global totals, and the global label spend must equal the query layer's
// own tasti_query_label_calls_total counters — the ledger meters the same
// successful-Label events the counters count.
func TestLedgerReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := newServer(serverOptions{
		dataset: "night-street", size: 600, train: 120, reps: 100, seed: 1,
		shards: 2, parallelism: 2, traceSample: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	tenants := []string{"alpha", "beta", ""}
	queries := map[string]string{
		"aggregate": `{"class":"car","err":0.2}`,
		"select":    `{"class":"car","count":1,"budget":80,"recall":0.9}`,
		"limit":     `{"class":"car","count":3,"k":5}`,
	}
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for kind, body := range queries {
			wg.Add(1)
			go func(tenant, kind, body string) {
				defer wg.Done()
				postQuery(t, ts.URL, kind, body, tenant)
			}(tenant, kind, body)
		}
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/admin/ledger")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/ledger status = %d", resp.StatusCode)
	}
	var snap tasti.LedgerSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if snap.Conservation != "ok" {
		t.Fatalf("conservation = %q", snap.Conservation)
	}
	if snap.Global.Requests != 9 {
		t.Errorf("global requests = %d, want 9", snap.Global.Requests)
	}
	var sum tasti.LedgerTotals
	names := map[string]bool{}
	for _, tt := range snap.Tenants {
		names[tt.Tenant] = true
		sum.Requests += tt.Requests
		sum.Labels += tt.Labels
		sum.Records += tt.Records
		sum.Shards += tt.Shards
		sum.Hits += tt.Hits
		sum.WallNS += tt.WallNS
	}
	if sum != snap.Global {
		t.Errorf("tenant sum %+v != global %+v", sum, snap.Global)
	}
	for _, want := range []string{"alpha", "beta", "default"} {
		if !names[want] {
			t.Errorf("ledger missing tenant %q (have %v)", want, names)
		}
	}
	for _, e := range snap.Recent {
		if e.Status != http.StatusOK || e.Shards != 2 || e.Records != 600 || e.WallNS <= 0 {
			t.Errorf("bad recent entry %+v", e)
		}
		if !traceIDPattern.MatchString(e.TraceID) {
			t.Errorf("recent entry has malformed trace id %q", e.TraceID)
		}
		if e.Hits > e.Labels {
			t.Errorf("entry books %d hits > %d labels", e.Hits, e.Labels)
		}
	}

	// Exact reconciliation against the query layer's own counters.
	fams := scrapeMetrics(t, ts.URL)
	var counterLabels int64
	fam := fams["tasti_query_label_calls_total"]
	if fam == nil {
		t.Fatal("tasti_query_label_calls_total missing from /metrics")
	}
	for _, sm := range fam.Samples {
		counterLabels += int64(sm.Value)
	}
	if snap.Global.Labels != counterLabels {
		t.Errorf("ledger books %d labels, tasti_query_label_calls_total says %d",
			snap.Global.Labels, counterLabels)
	}
	if snap.Global.Labels <= 0 {
		t.Error("no label spend booked at all")
	}
}

// scrapeMetrics fetches /metrics, verifies the exact Prometheus 0.0.4
// content type, and parses the full exposition the way a scraper would.
func scrapeMetrics(t *testing.T, url string) map[string]*tasti.PromFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	const wantCT = "text/plain; version=0.0.4; charset=utf-8"
	if ct := resp.Header.Get("Content-Type"); ct != wantCT {
		t.Errorf("content type = %q, want %q", ct, wantCT)
	}
	fams, err := tasti.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return fams
}

// TestStatusHealthAndIngestTrace exercises the full observability surface of
// an ingest-enabled server: /admin/status health collection, the readiness
// ride-along fields, the build-info and health gauges on /metrics, the
// server-side ack histogram, and an ingest trace showing the durability
// pipeline — decode, submit, wal/fsync, and the late-landing apply span.
func TestStatusHealthAndIngestTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts := walServer(t, func(o *serverOptions) {
		o.traceSample = 1
	})
	_ = srv

	extra, err := tasti.GenerateDataset("night-street", 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	resp := postIngest(t, ts.URL, ingestPayload(t, extra, 0, 16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitForRecords(t, ts.URL, 916)
	postQuery(t, ts.URL, "aggregate", `{"class":"car","err":0.2}`, "")

	// /admin/status collects fresh health.
	resp, err = http.Get(ts.URL + "/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Status          string  `json:"status"`
		Version         string  `json:"version"`
		Go              string  `json:"go"`
		Kernel          string  `json:"kernel"`
		TraceSampleRate float64 `json:"trace_sample_rate"`
		TracesRetained  int     `json:"traces_retained"`
		Ledger          struct {
			Requests int64 `json:"requests"`
			Records  int64 `json:"records"`
		} `json:"ledger"`
		Health *healthSnapshot `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Status != "ready" || status.Version != tasti.Version || status.Go == "" || status.Kernel == "" {
		t.Errorf("status identity = %+v", status)
	}
	if status.TraceSampleRate != 1 || status.TracesRetained < 2 {
		t.Errorf("status tracing = rate %v retained %d", status.TraceSampleRate, status.TracesRetained)
	}
	if status.Ledger.Requests < 2 {
		t.Errorf("status ledger books %d requests, want >= 2", status.Ledger.Requests)
	}
	h := status.Health
	if h == nil {
		t.Fatal("status has no health snapshot")
	}
	if h.Records != 916 || h.Shards != 1 || h.RecordSkew < 1 || h.RepSkew < 1 {
		t.Errorf("health shape = %+v", h)
	}
	if h.RadiusP50 > h.RadiusP90 || h.RadiusP90 > h.RadiusP99 {
		t.Errorf("radius quantiles not monotone: %v %v %v", h.RadiusP50, h.RadiusP90, h.RadiusP99)
	}
	if h.Drift == nil || h.Drift.Baseline <= 0 {
		t.Errorf("health drift = %+v", h.Drift)
	}
	if h.WAL == nil {
		t.Fatal("health has no WAL section")
	}
	if h.WAL.LagRecords != 16 || h.WAL.Segments < 1 || h.WAL.Bytes <= 0 {
		t.Errorf("WAL lag = %+v, want 16 unsnapshotted records", h.WAL)
	}

	// The stored snapshot rides along on /readyz.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decodeBody(t, resp)
	if _, ok := ready["record_skew"]; !ok {
		t.Errorf("/readyz missing record_skew: %v", ready)
	}
	if lag, ok := ready["wal_lag_records"]; !ok || lag.(float64) != 16 {
		t.Errorf("/readyz wal_lag_records = %v, want 16", ready["wal_lag_records"])
	}

	// Gauges and the server-side ack histogram land on /metrics.
	fams := scrapeMetrics(t, ts.URL)
	info := fams["tasti_build_info"]
	if info == nil || len(info.Samples) != 1 || info.Samples[0].Value != 1 {
		t.Fatalf("tasti_build_info = %+v", info)
	}
	for _, label := range []string{"version", "go", "kernel", "shards", "snapshot"} {
		if info.Samples[0].Labels[label] == "" {
			t.Errorf("tasti_build_info missing label %q: %v", label, info.Samples[0].Labels)
		}
	}
	if info.Samples[0].Labels["version"] != tasti.Version {
		t.Errorf("build_info version = %q, want %q", info.Samples[0].Labels["version"], tasti.Version)
	}
	if fam := fams["tasti_wal_lag_records"]; fam == nil || fam.Samples[0].Value != 16 {
		t.Errorf("tasti_wal_lag_records = %+v", fam)
	}
	for _, name := range []string{"tasti_shard_record_skew", "tasti_shard_rep_skew", "tasti_index_radius", "tasti_traces_retained_total"} {
		if fams[name] == nil {
			t.Errorf("/metrics missing %s", name)
		}
	}
	ack := fams["tasti_ingest_server_ack_seconds"]
	if ack == nil {
		t.Fatal("tasti_ingest_server_ack_seconds missing")
	}
	var ackCount float64
	for _, sm := range ack.Samples {
		if strings.HasSuffix(sm.Name, "_count") {
			ackCount = sm.Value
		}
	}
	if ackCount != 1 {
		t.Errorf("server ack histogram count = %v, want 1", ackCount)
	}

	// The ingest trace shows the durability pipeline. The apply span lands
	// after the ack (visibility follows durability), so poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr := getTraces(t, ts.URL, "?route=/ingest")
		if tr.Count == 1 {
			root := tr.Traces[0].Root
			if childSpan(root, "apply") != nil {
				for _, stage := range []string{"decode", "submit", "wal/fsync", "apply"} {
					if childSpan(root, stage) == nil {
						t.Errorf("ingest trace missing %q span (have %v)", stage, spanNames(root))
					}
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest trace never showed its apply span")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And its ledger entry books the appended records under kind "ingest".
	resp, err = http.Get(ts.URL + "/admin/ledger")
	if err != nil {
		t.Fatal(err)
	}
	var snap tasti.LedgerSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range snap.Recent {
		if e.Kind == "ingest" {
			found = true
			if e.Records != 16 || e.Status != http.StatusOK {
				t.Errorf("ingest ledger entry = %+v", e)
			}
		}
	}
	if !found {
		t.Error("no ingest entry in the ledger")
	}
}

// TestTelemetryOnOffBitwise pins the observability plane's core invariant:
// tracing every request versus tracing none changes no result bit, at every
// shard and worker count. All sixteen servers (4 configs x on/off, three
// query types) must produce byte-identical response bodies.
func TestTelemetryOnOffBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	queries := []struct{ kind, body string }{
		{"aggregate", `{"class":"car","err":0.2}`},
		{"select", `{"class":"car","count":1,"budget":80,"recall":0.9}`},
		{"limit", `{"class":"car","count":3,"k":5}`},
	}
	// canonical[kind] is the first-seen body; every other server must match.
	canonical := map[string][]byte{}
	for _, shards := range []int{1, 4} {
		for _, par := range []int{1, 4} {
			for _, sample := range []float64{1, 0} {
				srv, err := newServer(serverOptions{
					dataset: "night-street", size: 400, train: 80, reps: 64, seed: 3,
					shards: shards, parallelism: par, traceSample: sample,
				})
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(srv.handler())
				for _, q := range queries {
					got := postQuery(t, ts.URL, q.kind, q.body, "")
					if want, ok := canonical[q.kind]; !ok {
						canonical[q.kind] = got
					} else if !bytes.Equal(got, want) {
						t.Errorf("shards=%d par=%d sample=%v: %s response diverges:\n got %s\nwant %s",
							shards, par, sample, q.kind, got, want)
					}
				}
				ts.Close()
			}
		}
	}
}
