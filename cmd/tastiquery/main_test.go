package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/tasti"
)

func TestQuerySpec(t *testing.T) {
	videoScore, videoPred := querySpec("night-street", "car", 2)
	ann := tasti.VideoAnnotation{Boxes: []tasti.Box{{Class: "car"}, {Class: "car"}, {Class: "bus"}}}
	if videoScore(ann) != 2 {
		t.Errorf("video score = %v", videoScore(ann))
	}
	if !videoPred(ann) {
		t.Error("two cars should match count>=2")
	}

	_, textPred := querySpec("wikisql", "", 3)
	if textPred(tasti.TextAnnotation{NumPredicates: 2}) {
		t.Error("2 predicates should not match count>=3")
	}
	if !textPred(tasti.TextAnnotation{NumPredicates: 3}) {
		t.Error("3 predicates should match")
	}

	speechScore, speechPred := querySpec("common-voice", "", 0)
	male := tasti.SpeechAnnotation{Gender: "male"}
	female := tasti.SpeechAnnotation{Gender: "female"}
	if speechScore(male) != 1 || speechScore(female) != 0 {
		t.Error("speech score wrong")
	}
	if !speechPred(male) || speechPred(female) {
		t.Error("speech predicate wrong")
	}
}

func TestIndexConfig(t *testing.T) {
	cfg := indexConfig("night-street", 100, 50, 1)
	if !cfg.DoTrain || cfg.TrainingBudget != 100 || cfg.NumReps != 50 {
		t.Errorf("video config = %+v", cfg)
	}
	pt := indexConfig("wikisql", 0, 50, 1)
	if pt.DoTrain {
		t.Error("train=0 should build TASTI-PT")
	}
}

// testOptions returns a fast baseline configuration tests tweak per case.
func testOptions() runOptions {
	return runOptions{
		dsName: "night-street", size: 1200, seed: 1, query: "agg", class: "car",
		count: 5, k: 5, train: 200, reps: 150, budget: 100,
		errTgt: 0.2, recall: 0.9, par: 2, retries: 1,
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.gob")

	// Build + save.
	o := testOptions()
	o.save = path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("index not saved: %v", err)
	}
	// Load + query.
	o = testOptions()
	o.query, o.count, o.k, o.train, o.load = "limit", 4, 3, 100, path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Unknown query type errors.
	o = testOptions()
	o.size, o.query, o.count, o.k, o.train, o.reps, o.budget = 300, "nope", 1, 1, 0, 50, 50
	if err := run(o); err == nil {
		t.Error("unknown query should error")
	}
}

// TestRunChaosBuild: a build through an injected-fault labeler with retries
// on completes and answers queries.
func TestRunChaosBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := testOptions()
	o.size, o.train, o.reps = 800, 100, 80
	o.faultRate = 0.3
	o.retries = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestBuildIndexCheckpointResume exercises the CLI checkpoint flow: an
// interrupted build writes the checkpoint to -checkpoint, and re-running
// resumes from it without re-spending labeler budget.
func TestBuildIndexCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := testOptions()
	o.size, o.train, o.reps = 800, 0, 80 // TASTI-PT: labels go to reps only
	o.checkpoint = filepath.Join(t.TempDir(), "build.ckpt")
	o.par = 1

	ds, err := tasti.GenerateDataset(o.dsName, o.size, o.seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle := tasti.NewOracle(ds, "target", tasti.MaskRCNNCost)

	// First run hits a spent budget mid-representative-labeling.
	if _, err := buildIndex(o, ds, tasti.NewBudgetedLabeler(oracle, 30), nil); err == nil {
		t.Fatal("budgeted build succeeded, want interruption")
	}
	if _, err := os.Stat(o.checkpoint); err != nil {
		t.Fatalf("checkpoint not saved: %v", err)
	}

	// Second run resumes; the remaining budget is exactly enough.
	ix, err := buildIndex(o, ds, tasti.NewBudgetedLabeler(oracle, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats.ResumedLabels != 30 {
		t.Errorf("ResumedLabels = %d, want 30", ix.Stats.ResumedLabels)
	}
	if ix.Stats.RepLabelCalls != 50 {
		t.Errorf("resumed RepLabelCalls = %d, want 50", ix.Stats.RepLabelCalls)
	}
}
