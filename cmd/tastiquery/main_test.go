package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/tasti"
)

func TestQuerySpec(t *testing.T) {
	videoScore, videoPred := querySpec("night-street", "car", 2)
	ann := tasti.VideoAnnotation{Boxes: []tasti.Box{{Class: "car"}, {Class: "car"}, {Class: "bus"}}}
	if videoScore(ann) != 2 {
		t.Errorf("video score = %v", videoScore(ann))
	}
	if !videoPred(ann) {
		t.Error("two cars should match count>=2")
	}

	_, textPred := querySpec("wikisql", "", 3)
	if textPred(tasti.TextAnnotation{NumPredicates: 2}) {
		t.Error("2 predicates should not match count>=3")
	}
	if !textPred(tasti.TextAnnotation{NumPredicates: 3}) {
		t.Error("3 predicates should match")
	}

	speechScore, speechPred := querySpec("common-voice", "", 0)
	male := tasti.SpeechAnnotation{Gender: "male"}
	female := tasti.SpeechAnnotation{Gender: "female"}
	if speechScore(male) != 1 || speechScore(female) != 0 {
		t.Error("speech score wrong")
	}
	if !speechPred(male) || speechPred(female) {
		t.Error("speech predicate wrong")
	}
}

func TestIndexConfig(t *testing.T) {
	cfg := indexConfig("night-street", 100, 50, 1)
	if !cfg.DoTrain || cfg.TrainingBudget != 100 || cfg.NumReps != 50 {
		t.Errorf("video config = %+v", cfg)
	}
	pt := indexConfig("wikisql", 0, 50, 1)
	if pt.DoTrain {
		t.Error("train=0 should build TASTI-PT")
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.gob")

	// Build + save.
	if err := run("night-street", 1200, 1, "agg", "car", 5, 5, 200, 150, 100, path, "", 0.2, 0.9, false, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("index not saved: %v", err)
	}
	// Load + query.
	if err := run("night-street", 1200, 1, "limit", "car", 4, 3, 100, 150, 100, "", path, 0.2, 0.9, false, 2); err != nil {
		t.Fatal(err)
	}
	// Unknown query type errors.
	if err := run("night-street", 300, 1, "nope", "car", 1, 1, 0, 50, 50, "", "", 0.2, 0.9, false, 2); err == nil {
		t.Error("unknown query should error")
	}
}
