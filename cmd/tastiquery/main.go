// Command tastiquery builds a TASTI index over a synthetic corpus and runs
// ad-hoc queries against it, optionally persisting the index between runs.
//
// Usage:
//
//	tastiquery -dataset night-street -size 20000 -query agg -class car
//	tastiquery -dataset taipei -query limit -class bus -count 2 -k 10
//	tastiquery -dataset wikisql -query select -save /tmp/wikisql.idx
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tasti"
)

func main() {
	var (
		dsName = flag.String("dataset", "night-street", "corpus: night-street, taipei, amsterdam, wikisql, common-voice")
		size   = flag.Int("size", 10000, "corpus size")
		seed   = flag.Int64("seed", 1, "generation and algorithm seed")
		query  = flag.String("query", "agg", "query type: agg, select, limit")
		class  = flag.String("class", "car", "object class for video queries")
		count  = flag.Int("count", 5, "count threshold for limit queries")
		k      = flag.Int("k", 10, "matches requested by limit queries")
		train  = flag.Int("train", 600, "triplet-training label budget (0 builds TASTI-PT)")
		reps   = flag.Int("reps", 900, "cluster representatives to annotate")
		budget = flag.Int("budget", 300, "labeler budget for selection queries")
		save   = flag.String("save", "", "path to persist the index to")
		load   = flag.String("load", "", "path to load a previously saved index from")
		errTgt = flag.Float64("err", 0.05, "aggregation error target")
		recall = flag.Float64("recall", 0.9, "selection recall target")
		useANN = flag.Bool("ann", false, "build the distance table with the IVF approximate-NN index")
		par    = flag.Int("parallelism", 0, "worker count for index construction and propagation (<= 0 uses all CPUs; results are identical at every value)")
	)
	flag.Parse()

	if err := run(*dsName, *size, *seed, *query, *class, *count, *k, *train, *reps, *budget, *save, *load, *errTgt, *recall, *useANN, *par); err != nil {
		fmt.Fprintf(os.Stderr, "tastiquery: %v\n", err)
		os.Exit(1)
	}
}

func run(dsName string, size int, seed int64, query, class string, count, k, train, reps, budget int, save, load string, errTgt, recall float64, useANN bool, parallelism int) error {
	ds, err := tasti.GenerateDataset(dsName, size, seed)
	if err != nil {
		return err
	}
	cost := tasti.MaskRCNNCost
	if dsName == "wikisql" || dsName == "common-voice" {
		cost = tasti.HumanCost
	}
	oracle := tasti.NewOracle(ds, "target", cost)

	var index *tasti.Index
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		index, err = tasti.LoadIndex(f)
		if err != nil {
			return err
		}
		index.SetParallelism(parallelism)
		fmt.Printf("loaded index: %d records, %d representatives\n", index.NumRecords(), len(index.Table.Reps))
	} else {
		cfg := indexConfig(dsName, train, reps, seed)
		cfg.ApproxTable = useANN
		cfg.Parallelism = parallelism
		index, err = tasti.Build(cfg, ds, oracle)
		if err != nil {
			return err
		}
		fmt.Printf("built index: %d label calls (%d train + %d reps)\n",
			index.Stats.TotalLabelCalls(), index.Stats.TrainLabelCalls, index.Stats.RepLabelCalls)
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := index.Save(f); err != nil {
			return err
		}
		fmt.Printf("saved index to %s\n", save)
	}

	score, pred := querySpec(dsName, class, count)
	counting := tasti.NewCountingLabeler(oracle)

	switch query {
	case "agg":
		scores, err := index.Propagate(score)
		if err != nil {
			return err
		}
		res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
			ErrTarget: errTgt, Delta: 0.05, MinSamples: 100, Seed: seed + 1,
		}, ds.Len(), scores, score, counting)
		if err != nil {
			return err
		}
		fmt.Printf("aggregate = %.4f ± %.4f (%d target calls)\n", res.Estimate, res.HalfWidth, res.LabelerCalls)
	case "select":
		scores, err := index.Propagate(tasti.MatchScore(pred))
		if err != nil {
			return err
		}
		res, err := tasti.SelectWithRecall(tasti.SelectOptions{
			Budget: budget, Target: recall, Delta: 0.05, Seed: seed + 2,
		}, ds.Len(), scores, pred, counting)
		if err != nil {
			return err
		}
		fmt.Printf("selected %d records at threshold %.3f (%d target calls)\n",
			len(res.Returned), res.Threshold, res.OracleCalls)
	case "limit":
		scores, dists, err := index.PropagateNearest(score)
		if err != nil {
			return err
		}
		res, err := tasti.FindLimit(k, scores, dists, pred, counting)
		if err != nil {
			return err
		}
		fmt.Printf("found %d matches in %d target calls: %v\n", len(res.Found), res.OracleCalls, res.Found)
	default:
		return fmt.Errorf("unknown query %q (want agg, select, or limit)", query)
	}
	return nil
}

// indexConfig picks the bucket key for the corpus and assembles the build
// configuration.
func indexConfig(dsName string, train, reps int, seed int64) tasti.Config {
	var key tasti.BucketKey
	switch dsName {
	case "wikisql":
		key = tasti.TextBucketKey()
	case "common-voice":
		key = tasti.SpeechBucketKey()
	default:
		key = tasti.VideoBucketKey(0.5)
	}
	if train <= 0 {
		return tasti.PretrainedConfig(reps, seed)
	}
	return tasti.DefaultConfig(train, reps, key, seed)
}

// querySpec returns the scoring function and predicate the query flags
// describe for the given corpus.
func querySpec(dsName, class string, count int) (tasti.ScoreFunc, func(tasti.Annotation) bool) {
	switch dsName {
	case "wikisql":
		score := func(ann tasti.Annotation) float64 {
			return float64(ann.(tasti.TextAnnotation).NumPredicates)
		}
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.TextAnnotation).NumPredicates >= count
		}
		return score, pred
	case "common-voice":
		score := func(ann tasti.Annotation) float64 {
			if strings.EqualFold(ann.(tasti.SpeechAnnotation).Gender, "male") {
				return 1
			}
			return 0
		}
		pred := func(ann tasti.Annotation) bool {
			return strings.EqualFold(ann.(tasti.SpeechAnnotation).Gender, "male")
		}
		return score, pred
	default:
		score := tasti.CountScore(class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.VideoAnnotation).Count(class) >= count
		}
		return score, pred
	}
}
