// Command tastiquery builds a TASTI index over a synthetic corpus and runs
// ad-hoc queries against it, optionally persisting the index between runs.
//
// Usage:
//
//	tastiquery -dataset night-street -size 20000 -query agg -class car
//	tastiquery -dataset taipei -query limit -class bus -count 2 -k 10
//	tastiquery -dataset wikisql -query select -save /tmp/wikisql.idx
//
// Builds are fault tolerant: -retries and -label-timeout wrap the target
// labeler with reliability middleware, -fault-rate injects chaos for
// demonstration, -allow-degraded completes the index around permanently
// unlabelable records, and -checkpoint makes an interrupted build resumable
// without re-spending labeler budget (run the same command again to resume).
// With -checkpoint set, -checkpoint-interval flushes progress to disk every N
// paid-for labels, so even a hard kill (power loss, OOM killer) loses at most
// N labels. All files are written atomically: a crash mid-write leaves the
// previous file intact. See docs/RELIABILITY.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/tasti"
)

// runOptions collects the flag values; one struct instead of a 20-parameter
// run signature.
type runOptions struct {
	dsName string
	size   int
	seed   int64
	query  string
	class  string
	count  int
	k      int
	train  int
	reps   int
	budget int
	save   string
	load   string
	errTgt float64
	recall float64
	useANN   bool
	quantize bool
	par      int
	shards   int

	retries        int
	labelTimeout   time.Duration
	faultRate      float64
	checkpoint     string
	checkpointIval int
	allowDegraded  bool

	traceOut string
}

func main() {
	var o runOptions
	flag.StringVar(&o.dsName, "dataset", "night-street", "corpus: night-street, taipei, amsterdam, wikisql, common-voice")
	flag.IntVar(&o.size, "size", 10000, "corpus size")
	flag.Int64Var(&o.seed, "seed", 1, "generation and algorithm seed")
	flag.StringVar(&o.query, "query", "agg", "query type: agg, select, limit")
	flag.StringVar(&o.class, "class", "car", "object class for video queries")
	flag.IntVar(&o.count, "count", 5, "count threshold for limit queries")
	flag.IntVar(&o.k, "k", 10, "matches requested by limit queries")
	flag.IntVar(&o.train, "train", 600, "triplet-training label budget (0 builds TASTI-PT)")
	flag.IntVar(&o.reps, "reps", 900, "cluster representatives to annotate")
	flag.IntVar(&o.budget, "budget", 300, "labeler budget for selection queries")
	flag.StringVar(&o.save, "save", "", "path to persist the index to")
	flag.StringVar(&o.load, "load", "", "path to load a previously saved index from")
	flag.Float64Var(&o.errTgt, "err", 0.05, "aggregation error target")
	flag.Float64Var(&o.recall, "recall", 0.9, "selection recall target")
	flag.BoolVar(&o.useANN, "ann", false, "build the distance table with the IVF approximate-NN index")
	flag.BoolVar(&o.quantize, "quantize", false, "build the int8 quantized scan plane: 8x smaller candidate scans with exact rerank, bitwise-identical results")
	flag.IntVar(&o.par, "parallelism", 0, "worker count for index construction and propagation (<= 0 uses all CPUs; results are identical at every value)")
	flag.IntVar(&o.shards, "shards", 1, "scatter-gather shard count for query processing; results are bitwise identical at every value (<= 1 serves one shard)")
	flag.IntVar(&o.retries, "retries", 1, "labeler attempts per call, including the first (<= 1 disables retrying)")
	flag.DurationVar(&o.labelTimeout, "label-timeout", 0, "per-call target-labeler deadline (0 disables)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient labeler faults at this per-attempt probability")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "path to save build progress to on interruption, and resume from if present")
	flag.IntVar(&o.checkpointIval, "checkpoint-interval", 100, "with -checkpoint, also flush progress after every N paid-for labels, so a hard kill loses at most N labels (0 saves only on interruption)")
	flag.BoolVar(&o.allowDegraded, "allow-degraded", false, "complete the index around permanently unlabelable records")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a span-tree JSON trace of the run here and print a phase-timing summary")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "tastiquery: %v\n", err)
		os.Exit(1)
	}
}

func run(o runOptions) error {
	// A nil trace (no -trace-out) makes every span call below a no-op.
	var tr *tasti.Trace
	if o.traceOut != "" {
		tr = tasti.NewTrace("tastiquery")
	}

	sp := tr.Root().Child("generate")
	ds, err := tasti.GenerateDataset(o.dsName, o.size, o.seed)
	sp.End()
	if err != nil {
		return err
	}
	cost := tasti.MaskRCNNCost
	if o.dsName == "wikisql" || o.dsName == "common-voice" {
		cost = tasti.HumanCost
	}
	oracle := tasti.NewOracle(ds, "target", cost)
	target := oracle
	if o.faultRate > 0 {
		target = tasti.NewFlakyLabeler(oracle, tasti.FlakyConfig{
			Seed:           o.seed,
			TransientRate:  o.faultRate,
			MaxConsecutive: 3,
		})
	}

	var index *tasti.Index
	if o.load != "" {
		f, err := os.Open(o.load)
		if err != nil {
			return err
		}
		defer f.Close()
		index, err = tasti.LoadIndex(f)
		if err != nil {
			return err
		}
		index.SetParallelism(o.par)
		fmt.Printf("loaded index: %d records, %d representatives\n", index.NumRecords(), len(index.Table.Reps))
	} else {
		index, err = buildIndex(o, ds, target, tr.Root())
		if err != nil {
			return err
		}
		fmt.Println(index.Stats.String())
	}
	if o.save != "" {
		if err := tasti.WriteFileAtomic(o.save, index.Save); err != nil {
			return err
		}
		fmt.Printf("saved index to %s\n", o.save)
	}

	// Queries always run through the scatter-gather layer; -shards 1 (the
	// default) is the identity sharding, and every shard count produces
	// bitwise-identical answers (see docs/SHARDING.md).
	nShards := o.shards
	if nShards < 1 {
		nShards = 1
	}
	sharded, err := tasti.SplitIndex(index, nShards)
	if err != nil {
		return err
	}

	score, pred := querySpec(o.dsName, o.class, o.count)
	counting := tasti.NewCountingLabeler(oracle)

	qs := tr.Root().Child("query/" + o.query)
	switch o.query {
	case "agg":
		ps := qs.Child("propagate")
		scores, err := sharded.Propagate(score)
		ps.End()
		if err != nil {
			return err
		}
		ss := qs.Child("sample")
		res, err := tasti.EstimateAggregate(tasti.AggregateOptions{
			ErrTarget: o.errTgt, Delta: 0.05, MinSamples: 100, Seed: o.seed + 1,
		}, ds.Len(), scores, score, counting)
		ss.End()
		if err != nil {
			return err
		}
		qs.SetAttr("label_calls", res.LabelerCalls)
		fmt.Printf("aggregate = %.4f ± %.4f (%d target calls)\n", res.Estimate, res.HalfWidth, res.LabelerCalls)
	case "select":
		ps := qs.Child("propagate")
		scores, err := sharded.Propagate(tasti.MatchScore(pred))
		ps.End()
		if err != nil {
			return err
		}
		ss := qs.Child("sample")
		res, err := tasti.SelectWithRecall(tasti.SelectOptions{
			Budget: o.budget, Target: o.recall, Delta: 0.05, Seed: o.seed + 2,
		}, ds.Len(), scores, pred, counting)
		ss.End()
		if err != nil {
			return err
		}
		qs.SetAttr("label_calls", res.OracleCalls)
		fmt.Printf("selected %d records at threshold %.3f (%d target calls)\n",
			len(res.Returned), res.Threshold, res.OracleCalls)
	case "limit":
		ps := qs.Child("propagate")
		scores, dists, err := sharded.PropagateNearest(score)
		ps.End()
		if err != nil {
			return err
		}
		ss := qs.Child("scan")
		order := sharded.LimitOrder(scores, dists)
		res, err := tasti.FindLimitScan(tasti.LimitOptions{}, o.k, order, pred, counting)
		ss.End()
		if err != nil {
			return err
		}
		qs.SetAttr("label_calls", res.OracleCalls)
		fmt.Printf("found %d matches in %d target calls: %v\n", len(res.Found), res.OracleCalls, res.Found)
	default:
		return fmt.Errorf("unknown query %q (want agg, select, or limit)", o.query)
	}
	qs.End()
	return writeTrace(tr, o.traceOut)
}

// writeTrace finishes the trace, dumps the span tree as JSON to path, and
// prints the phase-timing summary. A nil trace is a no-op.
func writeTrace(tr *tasti.Trace, path string) error {
	if tr == nil {
		return nil
	}
	tr.Finish()
	if err := tasti.WriteFileAtomic(path, tr.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("\ntrace written to %s\n%s", path, tr.Summary())
	return nil
}

// buildIndex constructs the index with the configured reliability policy,
// resuming from -checkpoint when the file exists and saving a checkpoint
// there when the build is interrupted. Per-phase build spans nest under a
// "build" child of parent (nil disables tracing).
func buildIndex(o runOptions, ds *tasti.Dataset, target tasti.Labeler, parent *tasti.Span) (*tasti.Index, error) {
	cfg := indexConfig(o.dsName, o.train, o.reps, o.seed)
	cfg.ApproxTable = o.useANN
	cfg.Quantize = o.quantize
	cfg.Parallelism = o.par
	cfg.LabelTimeout = o.labelTimeout
	cfg.AllowDegraded = o.allowDegraded
	buildSpan := parent.Child("build")
	defer buildSpan.End()
	cfg.TraceSpan = buildSpan
	if o.retries > 1 {
		cfg.Retry = tasti.DefaultRetryPolicy(o.seed)
		cfg.Retry.MaxAttempts = o.retries
	}
	if o.checkpoint != "" && o.checkpointIval > 0 {
		cfg.CheckpointEvery = o.checkpointIval
		cfg.CheckpointSink = func(c *tasti.Checkpoint) error {
			return saveCheckpoint(o.checkpoint, c)
		}
	}

	var ckpt *tasti.Checkpoint
	if o.checkpoint != "" {
		f, err := os.Open(o.checkpoint)
		switch {
		case err == nil:
			ckpt, err = tasti.LoadCheckpoint(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			fmt.Printf("resuming from %s: %d labels already paid for\n", o.checkpoint, len(ckpt.Labeled))
		case !os.IsNotExist(err):
			return nil, err
		}
	}

	index, err := tasti.BuildResumable(cfg, ds, target, ckpt)
	if err != nil {
		var bie *tasti.BuildInterruptedError
		if errors.As(err, &bie) && o.checkpoint != "" {
			if serr := saveCheckpoint(o.checkpoint, bie.Checkpoint); serr != nil {
				return nil, fmt.Errorf("%w (and saving checkpoint failed: %v)", err, serr)
			}
			return nil, fmt.Errorf("%w\ncheckpoint saved to %s; re-run the same command to resume", err, o.checkpoint)
		}
		return nil, err
	}
	return index, nil
}

// saveCheckpoint atomically replaces the checkpoint file — a checkpoint
// exists to survive crashes, so a torn checkpoint write would defeat it.
func saveCheckpoint(path string, ckpt *tasti.Checkpoint) error {
	return tasti.WriteFileAtomic(path, ckpt.Save)
}

// indexConfig picks the bucket key for the corpus and assembles the build
// configuration.
func indexConfig(dsName string, train, reps int, seed int64) tasti.Config {
	var key tasti.BucketKey
	switch dsName {
	case "wikisql":
		key = tasti.TextBucketKey()
	case "common-voice":
		key = tasti.SpeechBucketKey()
	default:
		key = tasti.VideoBucketKey(0.5)
	}
	if train <= 0 {
		return tasti.PretrainedConfig(reps, seed)
	}
	return tasti.DefaultConfig(train, reps, key, seed)
}

// querySpec returns the scoring function and predicate the query flags
// describe for the given corpus.
func querySpec(dsName, class string, count int) (tasti.ScoreFunc, func(tasti.Annotation) bool) {
	switch dsName {
	case "wikisql":
		score := func(ann tasti.Annotation) float64 {
			return float64(ann.(tasti.TextAnnotation).NumPredicates)
		}
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.TextAnnotation).NumPredicates >= count
		}
		return score, pred
	case "common-voice":
		score := func(ann tasti.Annotation) float64 {
			if strings.EqualFold(ann.(tasti.SpeechAnnotation).Gender, "male") {
				return 1
			}
			return 0
		}
		pred := func(ann tasti.Annotation) bool {
			return strings.EqualFold(ann.(tasti.SpeechAnnotation).Gender, "male")
		}
		return score, pred
	default:
		score := tasti.CountScore(class)
		pred := func(ann tasti.Annotation) bool {
			return ann.(tasti.VideoAnnotation).Count(class) >= count
		}
		return score, pred
	}
}
